(* Runtime race sanitizer: guarded-cell checks under NSCQ_TSAN — the
   disabled no-op path, in-contract accesses staying silent, a provoked
   guarded-access-without-lock on two domains yielding exactly one
   warn-once finding, re-arming via reset, and the finding flowing into
   the flight recorder as a race.suspect event. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Recorder = Obs.Recorder

let contains_s haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Leave the sanitizer the way the environment configured it so the
   suite behaves identically under `NSCQ_TSAN=1 dune runtest`. *)
let env_enabled =
  match Sys.getenv_opt "NSCQ_TSAN" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let with_racesan enabled f () =
  Racesan.reset ();
  Racesan.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Racesan.set_enabled env_enabled;
      Racesan.reset ())
    f

(* Each test registers its own cell (cells cannot be unregistered), so
   names carry the test's identity for debuggability. *)
let fresh_cell name =
  let lock = Lockdep.create name in
  (lock, Racesan.register ~name ~lock)

(* --- disabled: checks are free and record nothing --- *)

let test_disabled_no_findings =
  with_racesan false (fun () ->
      let _lock, cell = fresh_cell "test.racesan.disabled" in
      (* deliberately unlocked accesses: with the sanitizer off these
         must neither record nor count *)
      let before = Racesan.checks () in
      Racesan.check cell;
      Racesan.check cell;
      check_int "no checks counted while disabled" before (Racesan.checks ());
      check_int "no findings while disabled" 0
        (List.length (Racesan.findings ())))

(* --- in-contract accesses stay silent --- *)

let test_locked_access_clean =
  with_racesan true (fun () ->
      let lock, cell = fresh_cell "test.racesan.clean" in
      for _ = 1 to 3 do
        Lockdep.protect lock (fun () -> Racesan.check cell)
      done;
      check_int "no findings for locked accesses" 0
        (List.length (Racesan.findings ())))

(* --- the core provocation: unlocked access on two domains --- *)

let test_two_domain_violation_warn_once =
  with_racesan true (fun () ->
      let lock, cell = fresh_cell "test.racesan.race" in
      (* one domain accesses in-contract (so the finding carries a prior
         stack), then two domains access bare concurrently *)
      Lockdep.protect lock (fun () -> Racesan.check cell);
      let barrier = Atomic.make 0 in
      let worker () =
        Atomic.incr barrier;
        while Atomic.get barrier < 2 do Domain.cpu_relax () done;
        for _ = 1 to 100 do Racesan.check cell done
      in
      let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
      Domain.join d1;
      Domain.join d2;
      (* warn-once: 200 violating checks, one finding *)
      let fs =
        List.filter
          (fun (f : Racesan.finding) ->
            String.equal f.name "test.racesan.race")
          (Racesan.findings ())
      in
      check_int "exactly one finding for the cell" 1 (List.length fs);
      let f = List.hd fs in
      check_bool "finding has the violating stack" true
        (String.length f.access_stack > 0);
      check_bool "finding carries the last in-contract stack" true
        (f.prior_stack <> None);
      check_bool "report renders the cell name" true
        (contains_s (Racesan.report ()) "test.racesan.race"))

(* --- reset re-arms the warn-once latch --- *)

let test_reset_rearms =
  with_racesan true (fun () ->
      let _lock, cell = fresh_cell "test.racesan.rearm" in
      Racesan.check cell;
      check_int "first trip recorded" 1
        (List.length
           (List.filter
              (fun (f : Racesan.finding) ->
                String.equal f.name "test.racesan.rearm")
              (Racesan.findings ())));
      Racesan.check cell;
      check_int "second trip latched" 1
        (List.length
           (List.filter
              (fun (f : Racesan.finding) ->
                String.equal f.name "test.racesan.rearm")
              (Racesan.findings ())));
      Racesan.reset ();
      Racesan.check cell;
      check_int "re-armed after reset" 1
        (List.length
           (List.filter
              (fun (f : Racesan.finding) ->
                String.equal f.name "test.racesan.rearm")
              (Racesan.findings ()))))

(* --- checks counter calibrates the overhead bench --- *)

let test_checks_counted =
  with_racesan true (fun () ->
      let lock, cell = fresh_cell "test.racesan.count" in
      let before = Racesan.checks () in
      for _ = 1 to 10 do
        Lockdep.protect lock (fun () -> Racesan.check cell)
      done;
      check_int "ten checks counted" (before + 10) (Racesan.checks ()))

(* --- findings flow into the flight recorder --- *)

let test_recorder_event =
  with_racesan true (fun () ->
      let _lock, cell = fresh_cell "test.racesan.recorder" in
      Recorder.reset ();
      Recorder.enable ();
      Fun.protect
        ~finally:(fun () ->
          Recorder.disable ();
          Recorder.reset ())
        (fun () ->
          Racesan.check cell;
          let suspects =
            List.filter
              (fun (e : Recorder.event) -> e.kind = Recorder.Race_suspect)
              (Recorder.events ())
          in
          check_int "one race.suspect event" 1 (List.length suspects);
          let e = List.hd suspects in
          check_bool "event carries the interned cell name" true
            (match Recorder.name_of e.a8 with
            | Some n -> String.equal n "test.racesan.recorder"
            | None -> false);
          check_int "event carries the violating domain" (Domain.self () :> int)
            e.a16))

let () =
  Alcotest.run "racesan"
    [
      ( "sanitizer",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_no_findings;
          Alcotest.test_case "locked access clean" `Quick
            test_locked_access_clean;
          Alcotest.test_case "two-domain violation, warn once" `Quick
            test_two_domain_violation_warn_once;
          Alcotest.test_case "reset re-arms" `Quick test_reset_rearms;
          Alcotest.test_case "checks counted" `Quick test_checks_counted;
          Alcotest.test_case "recorder race.suspect" `Quick
            test_recorder_event;
        ] );
    ]
