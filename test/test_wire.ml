(* The wire codec in isolation: encode/decode round-trips, resistance to
   truncation and single-byte corruption, and the result-chunking helper.
   Pure — no sockets; the socket path is exercised by test_server.ml. *)

module W = Server.Wire

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let frame_testable = Alcotest.testable W.pp_frame ( = )

(* --- generators --- *)

let gen_string st =
  let n = QCheck.Gen.int_bound 40 st in
  String.init n (fun _ -> Char.chr (QCheck.Gen.int_bound 255 st))

let gen_u16 = QCheck.Gen.int_bound 0xFFFF

let gen_u32 st =
  (* mix small ids with ones that exercise the high bytes *)
  if QCheck.Gen.bool st then QCheck.Gen.int_bound 1000 st
  else QCheck.Gen.int_bound 0xFFFFFFFF st

let gen_code st =
  List.nth
    [ W.Overloaded; W.Deadline_exceeded; W.Bad_request; W.Server_error;
      W.Shutting_down ]
    (QCheck.Gen.int_bound 4 st)

let gen_frame st =
  match QCheck.Gen.int_bound 5 st with
  | 0 -> W.Hello { version = gen_u16 st }
  | 1 -> W.Hello_ack { version = gen_u16 st; server = gen_string st }
  | 2 ->
    let verb =
      match QCheck.Gen.int_bound 6 st with
      | 0 -> W.Query (gen_string st)
      | 1 -> W.Stats
      | 2 -> W.Trace (gen_string st)
      | 3 -> W.Join (gen_string st)
      | 4 -> W.Insert (gen_string st)
      | 5 -> W.Delete (gen_string st)
      | _ -> W.Explain (gen_string st)
    in
    let trace = if QCheck.Gen.bool st then Some (gen_u32 st) else None in
    W.Request { id = gen_u32 st; deadline_ms = gen_u32 st; verb; trace }
  | 3 ->
    W.Result
      { id = gen_u32 st; seq = gen_u32 st; last = QCheck.Gen.bool st;
        chunk = gen_string st }
  | 4 -> W.Error { id = gen_u32 st; code = gen_code st; message = gen_string st }
  | _ -> W.Goodbye

let arbitrary_frame =
  QCheck.make ~print:(Format.asprintf "%a" W.pp_frame) gen_frame

(* --- properties --- *)

let prop_roundtrip =
  Testutil.qcheck_case ~count:500 ~name:"decode ∘ encode = id" arbitrary_frame
    (fun frame ->
      let s = W.encode frame in
      match W.decode s with
      | W.Decoded (frame', consumed) ->
        frame' = frame && consumed = String.length s
      | W.Need_more | W.Invalid _ -> false)

let prop_truncation =
  Testutil.qcheck_case ~count:200 ~name:"every strict prefix needs more bytes"
    arbitrary_frame (fun frame ->
      let s = W.encode frame in
      let ok = ref true in
      for n = 0 to String.length s - 1 do
        match W.decode (String.sub s 0 n) with
        | W.Need_more -> ()
        | W.Decoded _ | W.Invalid _ -> ok := false
      done;
      !ok)

let prop_corruption =
  Testutil.qcheck_case ~count:200
    ~name:"no single-byte flip survives the CRC" arbitrary_frame (fun frame ->
      let s = W.encode frame in
      let ok = ref true in
      for i = 0 to String.length s - 1 do
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code s.[i] lxor 0x41));
        (* a flipped length can look like an incomplete longer frame
           (Need_more) — but it must never decode to a frame *)
        match W.decode (Bytes.unsafe_to_string b) with
        | W.Decoded _ -> ok := false
        | W.Need_more | W.Invalid _ -> ()
      done;
      !ok)

let prop_stream =
  Testutil.qcheck_case ~count:100 ~name:"concatenated frames decode in order"
    QCheck.(list_of_size (Gen.int_range 1 5) arbitrary_frame) (fun frames ->
      let buf = String.concat "" (List.map W.encode frames) in
      let rec decode_all pos acc =
        if pos >= String.length buf then List.rev acc
        else
          match W.decode ~pos buf with
          | W.Decoded (f, consumed) -> decode_all (pos + consumed) (f :: acc)
          | W.Need_more | W.Invalid _ -> List.rev acc
      in
      decode_all 0 [] = frames)

(* --- deterministic edges --- *)

let test_bad_magic () =
  (* a Hello whose magic was rewritten along with a recomputed CRC would
     need the attacker to speak the protocol; here just check the parser
     rejects wrong magic even when the CRC is valid for those bytes *)
  let s = W.encode (W.Hello { version = W.version }) in
  let b = Bytes.of_string s in
  (* payload starts after the 9-byte header; overwrite the magic *)
  Bytes.blit_string "XXXX" 0 b 9 4;
  (match W.decode (Bytes.unsafe_to_string b) with
  | W.Invalid _ -> ()
  | W.Decoded _ | W.Need_more -> Alcotest.fail "bad magic accepted");
  (* garbage that is long enough to look like a frame header *)
  match W.decode "garbage bytes that are not a frame" with
  | W.Invalid _ | W.Need_more -> ()
  | W.Decoded _ -> Alcotest.fail "garbage decoded"

let test_oversized_length () =
  let b = Bytes.make 9 '\000' in
  Bytes.set_int32_be b 0 0x7FFFFFFFl;
  match W.decode (Bytes.unsafe_to_string b) with
  | W.Invalid _ -> ()
  | W.Decoded _ | W.Need_more -> Alcotest.fail "oversized frame not rejected"

let test_chunking () =
  (match W.chunk_result ~id:7 "" with
  | [ W.Result { id = 7; seq = 0; last = true; chunk = "" } ] -> ()
  | _ -> Alcotest.fail "empty payload should yield one final frame");
  let payload = String.make (W.max_frame + 5) 'x' in
  (match W.chunk_result ~id:9 payload with
  | [ W.Result { seq = 0; last = false; chunk = c0; _ };
      W.Result { seq = 1; last = true; chunk = c1; _ } ] ->
    check_int "first chunk is max_frame" W.max_frame (String.length c0);
    check_int "tail carries the rest" 5 (String.length c1);
    check_bool "reassembly" true (c0 ^ c1 = payload)
  | frames ->
    Alcotest.failf "expected 2 chunks, got %d" (List.length frames));
  match W.chunk_result ~id:3 "hello" with
  | [ W.Result { id = 3; last = true; chunk = "hello"; _ } ] -> ()
  | _ -> Alcotest.fail "small payload should be a single chunk"

(* Trace-less requests must encode byte-for-byte as protocol v1 did: the
   payload is exactly [u32 id][u32 deadline][verb byte 0|1][text], with no
   trace-presence bit — old peers parse it unchanged, and frames an old
   peer produces parse here with [trace = None]. *)
let test_v1_request_layout () =
  let check_layout verb ~verb_byte ~text =
    let s =
      W.encode (W.Request { id = 7; deadline_ms = 30; verb; trace = None })
    in
    let payload = String.sub s 9 (String.length s - 9) in
    check_int "payload length" (9 + String.length text) (String.length payload);
    check_int "id" 7 (Int32.to_int (String.get_int32_be payload 0));
    check_int "deadline" 30 (Int32.to_int (String.get_int32_be payload 4));
    check_int "verb byte (no trace bit)" verb_byte (String.get_uint8 payload 8);
    Alcotest.(check string)
      "text" text
      (String.sub payload 9 (String.length payload - 9))
  in
  check_layout (W.Query "{a, {b}}") ~verb_byte:0 ~text:"{a, {b}}";
  check_layout W.Stats ~verb_byte:1 ~text:"";
  check_layout (W.Trace "{a}") ~verb_byte:2 ~text:"{a}";
  (* the Join verb rides the previously unused verb value 3: the old
     verbs' encodings stay byte-identical, an old server rejects 3 as an
     unknown verb instead of misreading the frame *)
  check_layout (W.Join "{a}\n{b, {c}}") ~verb_byte:3 ~text:"{a}\n{b, {c}}";
  (* the write verbs ride the next two unused verb values: 4 carries a
     nested-set literal, 5 a decimal global id — an old server rejects
     both as unknown verbs instead of misreading the frame *)
  check_layout (W.Insert "{a, {b}}") ~verb_byte:4 ~text:"{a, {b}}";
  check_layout (W.Delete "17") ~verb_byte:5 ~text:"17";
  (* the Explain verb rides the next unused verb value 6 and carries the
     query text like Query/Trace; the old verbs above stay byte-identical,
     an old server rejects 6 as an unknown verb instead of misreading *)
  check_layout (W.Explain "{a, {b}}") ~verb_byte:6 ~text:"{a, {b}}";
  (* the trace-id rides behind bit 4 of the verb byte; an old parser sees
     a verb it does not know and rejects the frame instead of misreading *)
  let s =
    W.encode
      (W.Request
         { id = 7; deadline_ms = 30; verb = W.Query "{a}"; trace = Some 99 })
  in
  check_int "trace bit set" 0x10 (String.get_uint8 s (9 + 8) land 0x10);
  check_int "trace id" 99 (Int32.to_int (String.get_int32_be s (9 + 9)));
  (* the trace bit composes with the Join verb nibble like any other *)
  let s =
    W.encode
      (W.Request
         { id = 7; deadline_ms = 30; verb = W.Join "{a}"; trace = Some 99 })
  in
  check_int "join verb under trace bit" (0x10 lor 3)
    (String.get_uint8 s (9 + 8));
  let s =
    W.encode
      (W.Request
         { id = 7; deadline_ms = 30; verb = W.Explain "{a}"; trace = Some 99 })
  in
  check_int "explain verb under trace bit" (0x10 lor 6)
    (String.get_uint8 s (9 + 8))

let test_join_payload () =
  (* the count line disambiguates an empty payload: zero outer queries
     versus one matchless outer query *)
  Alcotest.(check string) "empty outer" "0" (W.join_payload []);
  (match W.split_join "0" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty outer should split to []");
  (match W.split_join (W.join_payload [ [] ]) with
  | Ok [ [] ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "one matchless outer should split to [[]]");
  let groups = [ [ 0; 2; 5 ]; []; [ 7 ] ] in
  (match W.split_join (W.join_payload groups) with
  | Ok g -> Alcotest.(check bool) "round-trip" true (g = groups)
  | Error m -> Alcotest.failf "round-trip failed: %s" m);
  (* malformed payloads are errors, not exceptions *)
  List.iter
    (fun payload ->
      match W.split_join payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "payload %S should be rejected" payload)
    [ ""; "x"; "2\n1 2"; "1\n1 2\n3 4"; "1\nfoo bar" ]

let prop_join_payload =
  Testutil.qcheck_case ~count:300 ~name:"join payload round-trips"
    QCheck.(small_list (small_list small_nat))
    (fun groups ->
      match W.split_join (W.join_payload groups) with
      | Ok g -> g = groups
      | Error _ -> false)

let prop_trace_field =
  Testutil.qcheck_case ~count:300 ~name:"optional trace id round-trips"
    QCheck.(
      pair (option (int_bound 0x3FFFFFFF)) (pair small_string bool))
    (fun (trace, (text, as_trace_verb)) ->
      let verb = if as_trace_verb then W.Trace text else W.Query text in
      let frame = W.Request { id = 3; deadline_ms = 0; verb; trace } in
      match W.decode (W.encode frame) with
      | W.Decoded (frame', _) -> frame' = frame
      | W.Need_more | W.Invalid _ -> false)

let test_traced_payload () =
  let result = "0 2 5" and spans = "trace 2a\n0\t1\t2\tquery" in
  let r, s = W.split_traced (W.traced_payload ~result ~spans) in
  Alcotest.(check string) "result part" result r;
  Alcotest.(check string) "spans part" spans s;
  (* a payload with no newline is all result, no spans *)
  let r, s = W.split_traced "0 2 5" in
  Alcotest.(check string) "bare result" "0 2 5" r;
  Alcotest.(check string) "no spans" "" s

let test_pipe_io () =
  (* write_frame / read_frame over a pipe, including interleaved frames *)
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let sent =
        [ W.Hello { version = 1 };
          W.Request
            { id = 1; deadline_ms = 250; verb = W.Query "{a, {b}}";
              trace = None };
          W.Request
            { id = 2; deadline_ms = 0; verb = W.Trace "{a}";
              trace = Some 0x1234 };
          W.Result { id = 1; seq = 0; last = true; chunk = "0 2 5" };
          W.Goodbye ]
      in
      List.iter (W.write_frame w) sent;
      List.iter
        (fun expected ->
          Alcotest.check frame_testable "frame over pipe" expected
            (W.read_frame r))
        sent;
      Unix.close w;
      match W.read_frame r with
      | exception W.Closed -> ()
      | _ -> Alcotest.fail "EOF should raise Closed")

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [ prop_roundtrip; prop_truncation; prop_corruption; prop_stream;
          prop_trace_field; prop_join_payload ] );
      ( "edges",
        [
          Alcotest.test_case "bad magic / garbage" `Quick test_bad_magic;
          Alcotest.test_case "oversized length" `Quick test_oversized_length;
          Alcotest.test_case "v1 request layout" `Quick test_v1_request_layout;
          Alcotest.test_case "traced payload split" `Quick test_traced_payload;
          Alcotest.test_case "join payload split" `Quick test_join_payload;
          Alcotest.test_case "result chunking" `Quick test_chunking;
          Alcotest.test_case "pipe round-trip" `Quick test_pipe_io;
        ] );
    ]
