(* The set-containment join engine against its contract: for every
   configuration, [Join.Engine.join] returns exactly the pairs of the
   naive per-query loop — through the prefix tree's fast path, through
   forced LIMIT+ cuts, through the fallback path, over the paired-
   collection generator's guaranteed polarities, and sharded through the
   router (local, remote, and degraded with a dead shard). *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module Sem = Containment.Semantics
module V = Nested.Value
module J = Join.Engine
module M = Shard.Manifest
module P = Shard.Partitioner
module R = Shard.Router

let check_pairs = Alcotest.(check (list (pair int int)))

let with_collection values f =
  let inv = Containment.Collection.of_values values in
  Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv)

(* drop outer values the engines refuse outright (atoms) *)
let as_outer vs = List.filter V.is_set vs

let differential ?(config = J.default) values outers =
  with_collection values @@ fun inv ->
  let got = (J.join ~config inv outers).J.pairs in
  let want = J.naive ~config:config.J.engine inv outers in
  got = want

(* --- qcheck differentials --- *)

let arbitrary_join_case =
  QCheck.make
    ~print:(fun (vs, qs) ->
      Printf.sprintf "inner:\n%s\nouter:\n%s"
        (String.concat "\n" (List.map V.to_string vs))
        (String.concat "\n" (List.map V.to_string qs)))
    (fun st ->
      let records = QCheck.Gen.int_range 0 14 st in
      let inner =
        List.init records (fun _ ->
            Testutil.gen_set ~max_depth:3 ~max_width:4 st)
      in
      let n_outer = QCheck.Gen.int_range 0 10 st in
      let outer =
        List.init n_outer (fun _ ->
            match QCheck.Gen.int_bound 3 st with
            | 0 when inner <> [] ->
              (* a subquery of a record: guaranteed dense positives *)
              let r = List.nth inner (QCheck.Gen.int_bound (records - 1) st) in
              Testutil.shrink_to_subquery st r
            | 1 ->
              (* single-atom and tiny sets stress depth-1 handling *)
              V.set [ V.atom (Testutil.gen_atom_string st) ]
            | _ -> Testutil.gen_set ~max_depth:3 ~max_width:4 st)
        |> as_outer
      in
      (inner, outer))

let prop_differential =
  Testutil.qcheck_case ~count:150 ~name:"join = naive loop (default config)"
    arbitrary_join_case
    (fun (inner, outer) -> differential inner outer)

(* Forced-cut configurations: every cut point must stay exact because
   leaves finish with oracle verification. *)
let cut_configs =
  [
    ("depth-1 cap", { J.default with J.max_depth = 1 });
    ("always cut", { J.default with J.cut_candidates = max_int });
    ("fanout cut", { J.default with J.cut_fanout = 1000 });
    ("no cuts", { J.default with J.max_depth = 0; J.cut_candidates = 0 });
  ]

let prop_cut_configs =
  List.map
    (fun (label, config) ->
      Testutil.qcheck_case ~count:75
        ~name:(Printf.sprintf "join = naive under %s" label)
        arbitrary_join_case
        (fun (inner, outer) -> differential ~config inner outer))
    cut_configs

(* Non-fast-path semantics route through the fallback and must still
   match the naive loop under the same engine config. *)
let fallback_configs =
  [
    { E.default with E.join = Sem.Equality };
    { E.default with E.join = Sem.Superset };
    { E.default with E.scope = E.Anywhere };
    { E.default with E.embedding = Sem.Iso };
  ]

let prop_fallback =
  Testutil.qcheck_case ~count:50 ~name:"join = naive on fallback configs"
    arbitrary_join_case
    (fun (inner, outer) ->
      List.for_all
        (fun engine ->
          match differential ~config:{ J.default with J.engine } inner outer with
          | ok -> ok
          | exception Sem.Unsupported _ -> true)
        fallback_configs)

(* --- deterministic edges --- *)

let licences = List.map Testutil.v Testutil.licences_strings

let test_edges () =
  (* empty outer collection *)
  with_collection licences (fun inv ->
      let r = J.join inv [] in
      check_pairs "empty outer" [] r.J.pairs;
      Alcotest.(check int) "no queries" 0 r.J.stats.J.outer);
  (* empty inner collection *)
  with_collection [] (fun inv ->
      let r = J.join inv [ Testutil.v "{a}"; Testutil.v "{a, {b}}" ] in
      check_pairs "empty inner" [] r.J.pairs);
  (* duplicate outer sets share one prefix path but answer separately *)
  with_collection licences (fun inv ->
      let q = Testutil.v "{UK, {A, motorbike}}" in
      let r = J.join inv [ q; q; q ] in
      let per_q = (E.query inv q).E.records in
      check_pairs "duplicates"
        (List.concat_map (fun qi -> List.map (fun id -> (qi, id)) per_q)
           [ 0; 1; 2 ])
        r.J.pairs);
  (* an atom outer value is refused like the engine refuses it *)
  with_collection licences (fun inv ->
      Alcotest.check_raises "atom outer"
        (Invalid_argument "Query.of_value: query must be a set")
        (fun () -> ignore (J.join inv [ V.atom "car" ])));
  (* the empty set query matches every record (atomless → fallback) *)
  with_collection licences (fun inv ->
      let r = J.join inv [ V.empty ] in
      check_pairs "empty set query"
        (List.mapi (fun i _ -> (0, i)) licences)
        r.J.pairs;
      Alcotest.(check int) "fallback took it" 1 r.J.stats.J.fallback)

let test_deep_and_skewed () =
  (* deep nesting: chains stress root-lifting across node levels *)
  let rec chain n = if n = 0 then V.atom "z" else V.set [ V.atom "a"; chain (n - 1) ] in
  let inner = List.init 8 (fun i -> chain (i + 1)) in
  let outer = [ V.set [ V.atom "a" ]; chain 3; chain 8; V.set [ chain 2 ] ] in
  Alcotest.(check bool) "deep chains" true (differential inner outer);
  (* skewed sizes: one huge record among tiny ones, one huge query *)
  let big = V.set (List.init 60 (fun i -> V.atom (Printf.sprintf "x%d" i))) in
  let inner = big :: List.init 10 (fun i -> V.set [ V.atom (Printf.sprintf "x%d" i) ]) in
  let outer =
    [ V.set (List.init 30 (fun i -> V.atom (Printf.sprintf "x%d" (2 * i))));
      V.set [ V.atom "x3" ] ]
  in
  Alcotest.(check bool) "skewed sizes" true (differential inner outer)

(* --- the paired-collection generator's guarantees --- *)

let test_paired_generator () =
  let w =
    Datagen.Paired.make ~seed:7 ~label_dist:(Datagen.Synthetic.Zipfian 0.7)
      ~selectivity:0.5 ~inner:40 ~outer:30 ()
  in
  Alcotest.(check int) "inner count" 40 (List.length w.Datagen.Paired.inner);
  Alcotest.(check int) "outer count" 30 (List.length w.Datagen.Paired.outer);
  with_collection w.Datagen.Paired.inner @@ fun inv ->
  let outers = Datagen.Workload.values w.Datagen.Paired.outer in
  let r = J.join inv outers in
  let groups = J.group ~outer:(List.length outers) r.J.pairs in
  List.iteri
    (fun qi (q : Datagen.Workload.query) ->
      let ids = List.nth groups qi in
      if q.Datagen.Workload.positive then begin
        Alcotest.(check bool)
          (Printf.sprintf "positive %d has matches" qi)
          true (ids <> []);
        Alcotest.(check bool)
          (Printf.sprintf "positive %d finds its source" qi)
          true
          (List.mem q.Datagen.Workload.source_record ids)
      end
      else
        Alcotest.(check (list int))
          (Printf.sprintf "negative %d is empty" qi)
          [] ids)
    w.Datagen.Paired.outer;
  (* and the result still matches the naive loop *)
  Alcotest.(check bool) "paired differential" true
    (r.J.pairs = J.naive inv outers);
  (* determinism across runs *)
  let w' =
    Datagen.Paired.make ~seed:7 ~label_dist:(Datagen.Synthetic.Zipfian 0.7)
      ~selectivity:0.5 ~inner:40 ~outer:30 ()
  in
  Alcotest.(check bool) "generator is deterministic" true
    (List.equal V.equal w.Datagen.Paired.inner w'.Datagen.Paired.inner
    && List.equal V.equal
         (Datagen.Workload.values w.Datagen.Paired.outer)
         (Datagen.Workload.values w'.Datagen.Paired.outer))

(* --- the stats tell the sharing story --- *)

let test_stats_sharing () =
  (* queries sharing a rare atom share its (rarest-first) prefix node:
     the shared counter must reflect the k-1 saved lookups/intersections *)
  let commons = List.init 6 (fun j -> V.atom (Printf.sprintf "c%d" j)) in
  let inner =
    List.init 12 (fun i ->
        V.set (if i < 6 then V.atom "rare" :: commons else commons))
  in
  let outer =
    List.init 6 (fun j ->
        V.set [ V.atom "rare"; V.atom (Printf.sprintf "c%d" j) ])
  in
  with_collection inner @@ fun inv ->
  let r =
    J.join ~config:{ J.default with J.cut_candidates = 0 } inv outer
  in
  let s = r.J.stats in
  Alcotest.(check int) "all fast path" 6 s.J.fast_path;
  (* "rare" sorts first in all six queries: one node serving six queries,
     so five of the six lookups are shared *)
  Alcotest.(check bool) "prefix sharing happened" true
    (s.J.intersections_shared >= 5);
  Alcotest.(check int) "tree shares the rare prefix" 7 s.J.tree_nodes;
  check_pairs "sharing result"
    (List.concat_map (fun j -> List.init 6 (fun i -> (j, i))) [ 0; 1; 2; 3; 4; 5 ])
    r.J.pairs

(* --- sharded joins --- *)

let collection =
  let st = Random.State.make [| 11 |] in
  licences
  @ List.init 30 (fun _ -> Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st)

let outer_queries =
  let st = Random.State.make [| 23 |] in
  List.map Testutil.v [ "{UK, {A, motorbike}}"; "{car}"; "{nothere}" ]
  @ (List.filteri (fun i _ -> i mod 4 = 0) collection
    |> List.map (fun r ->
           let q = Testutil.shrink_to_subquery st r in
           if V.is_set q then q else r)
    |> as_outer)

let with_built ~shards f =
  Testutil.with_temp_path ".manifest" @@ fun mpath ->
  let m = P.build ~policy:M.Hash ~shards ~manifest_path:mpath collection in
  let remove () =
    Array.iter
      (fun (s : M.shard) ->
        match s.M.location with
        | M.Local { path; _ } -> ( try Sys.remove path with Sys_error _ -> ())
        | M.Remote _ -> ())
      m.M.shards
  in
  Fun.protect ~finally:remove (fun () -> f m)

let single_store_pairs () =
  with_collection collection (fun inv -> (J.join inv outer_queries).J.pairs)

let test_sharded_local () =
  let want = single_store_pairs () in
  with_built ~shards:3 @@ fun m ->
  let r = R.open_manifest m in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  let o = R.join r outer_queries in
  Alcotest.(check (list (pair int string))) "no warnings" [] o.R.join_warnings;
  check_pairs "sharded = single store" want o.R.pairs;
  (* empty outer short-circuits *)
  let o = R.join r [] in
  check_pairs "empty outer over shards" [] o.R.pairs;
  Alcotest.(check int) "nothing queried" 0 o.R.join_shards_queried

let serve_cfg =
  {
    Server.Service.default_config with
    Server.Service.port = 0;
    domains = 1;
    stats_interval_s = 0.;
  }

let serve_shard (s : M.shard) =
  match s.M.location with
  | M.Remote _ -> assert false
  | M.Local { path; backend } ->
    Server.Service.start serve_cfg ~open_handle:(fun () ->
        IF.open_store (P.open_store backend path))

let remote_manifest (m : M.t) ports =
  M.make ~policy:m.M.policy ~total_records:m.M.total_records
    (List.mapi
       (fun i (s : M.shard) ->
         { s with M.location = M.Remote { host = "127.0.0.1"; port = ports.(i) } })
       (Array.to_list m.M.shards))

let test_sharded_remote () =
  let want = single_store_pairs () in
  with_built ~shards:3 @@ fun m ->
  let servers = Array.map serve_shard m.M.shards in
  Fun.protect ~finally:(fun () -> Array.iter Server.Service.stop servers)
  @@ fun () ->
  (* one remote shard among locals: mixed fan-out *)
  let mixed =
    M.make ~policy:m.M.policy ~total_records:m.M.total_records
      (List.mapi
         (fun i (s : M.shard) ->
           if i = 1 then
             { s with
               M.location =
                 M.Remote
                   { host = "127.0.0.1"; port = Server.Service.port servers.(1) };
             }
           else s)
         (Array.to_list m.M.shards))
  in
  let r = R.open_manifest mixed in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  let o = R.join r outer_queries in
  Alcotest.(check (list (pair int string))) "no warnings" [] o.R.join_warnings;
  check_pairs "mixed local/remote = single store" want o.R.pairs;
  (* all-remote *)
  let rm = remote_manifest m (Array.map Server.Service.port servers) in
  let rr = R.open_manifest rm in
  Fun.protect ~finally:(fun () -> R.close rr) @@ fun () ->
  let o = R.join rr outer_queries in
  check_pairs "all-remote = single store" want o.R.pairs

let test_sharded_dead_partial () =
  let want = single_store_pairs () in
  with_built ~shards:3 @@ fun m ->
  (* find a free port, then close it: shard 2 is dead *)
  let dead_port =
    let tmp = serve_shard m.M.shards.(0) in
    let p = Server.Service.port tmp in
    Server.Service.stop tmp;
    p
  in
  let s0 = serve_shard m.M.shards.(0) and s1 = serve_shard m.M.shards.(1) in
  Fun.protect
    ~finally:(fun () ->
      Server.Service.stop s0;
      Server.Service.stop s1)
  @@ fun () ->
  let rm =
    remote_manifest m
      [| Server.Service.port s0; Server.Service.port s1; dead_port |]
  in
  (* Fail_fast: the dead shard raises *)
  let rf = R.open_manifest rm in
  (match R.join rf outer_queries with
  | exception R.Shard_failed (2, _) -> ()
  | exception R.Shard_failed (i, _) -> Alcotest.failf "wrong shard failed: %d" i
  | _ -> Alcotest.fail "dead shard did not fail the join");
  R.close rf;
  (* Partial: the surviving shards' pairs, one warning for shard 2 *)
  let rp =
    R.open_manifest ~config:{ R.default_config with R.fail_mode = R.Partial } rm
  in
  Fun.protect ~finally:(fun () -> R.close rp) @@ fun () ->
  let o = R.join rp outer_queries in
  (match o.R.join_warnings with
  | [ (2, _) ] -> ()
  | w -> Alcotest.failf "expected one warning for shard 2, got %d" (List.length w));
  let dead_ids =
    Array.to_list m.M.shards.(2).M.ids |> List.sort_uniq Int.compare
  in
  let want_partial =
    List.filter (fun (_, id) -> not (List.mem id dead_ids)) want
  in
  check_pairs "partial = single store minus dead shard" want_partial o.R.pairs

(* --- the wire path end to end --- *)

let test_client_join () =
  let want = single_store_pairs () in
  Testutil.with_temp_path ".log" @@ fun path ->
  let b = Invfile.Builder.create (Storage.Log_store.create path) in
  List.iter (fun v -> ignore (Invfile.Builder.add_value b v)) collection;
  IF.close (Invfile.Builder.finish b);
  let srv =
    Server.Service.start serve_cfg ~open_handle:(fun () ->
        IF.open_store (Storage.Log_store.open_existing path))
  in
  Fun.protect ~finally:(fun () -> Server.Service.stop srv) @@ fun () ->
  let c = Server.Client.connect ~port:(Server.Service.port srv) () in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
  let text = String.concat "\n" (List.map V.to_string outer_queries) in
  (match Server.Client.join c text with
  | Ok payload -> (
    match Server.Wire.split_join payload with
    | Ok groups ->
      check_pairs "wire join = single store" want
        (List.concat
           (List.mapi (fun qi ids -> List.map (fun id -> (qi, id)) ids) groups))
    | Error m -> Alcotest.failf "malformed join payload: %s" m)
  | Error (_, m) -> Alcotest.failf "server refused join: %s" m);
  (* malformed outer collections are Bad_request, not dropped conns *)
  match Server.Client.join c "{a}\nnot a literal" with
  | Error (Server.Wire.Bad_request, _) -> ()
  | Ok _ -> Alcotest.fail "malformed outer accepted"
  | Error (c', m) ->
    Alcotest.failf "wrong refusal: %a %s" Server.Wire.pp_error_code c' m

let () =
  Alcotest.run "join"
    [
      ( "differential",
        prop_differential :: prop_fallback :: prop_cut_configs );
      ( "edges",
        [
          Alcotest.test_case "empty/duplicate/atom edges" `Quick test_edges;
          Alcotest.test_case "deep chains and skewed sizes" `Quick
            test_deep_and_skewed;
          Alcotest.test_case "stats reflect sharing" `Quick test_stats_sharing;
        ] );
      ( "paired datagen",
        [ Alcotest.test_case "polarity guarantees" `Quick test_paired_generator ] );
      ( "sharded",
        [
          Alcotest.test_case "local shards = single store" `Quick
            test_sharded_local;
          Alcotest.test_case "remote shards = single store" `Quick
            test_sharded_remote;
          Alcotest.test_case "dead shard: fail-fast and partial" `Quick
            test_sharded_dead_partial;
          Alcotest.test_case "client join over the wire" `Quick test_client_join;
        ] );
    ]
