(* The observability layer in isolation: registry exactness under
   concurrent domains, histogram quantile behavior, text/JSON rendering,
   span-tree recording and its wire round-trip, and the slow-query line.

   The engine/server/router integration of tracing lives in
   test_engine.ml / test_server.ml / test_shard.ml. *)

module M = Obs.Metrics
module T = Obs.Trace

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* --- counters --- *)

let test_counter_basics () =
  let reg = M.create () in
  let c = M.counter reg "nscq_test_total" in
  check_int "fresh counter" 0 (M.counter_value c);
  M.inc c;
  M.add c 41;
  check_int "inc + add" 42 (M.counter_value c);
  (* same name and labels yield the same instrument *)
  let c' = M.counter reg "nscq_test_total" in
  M.inc c';
  check_int "shared series" 43 (M.counter_value c);
  (* distinct labels are distinct series *)
  let cl = M.counter reg "nscq_test_total" ~labels:[ ("shard", "0") ] in
  check_int "labelled series is fresh" 0 (M.counter_value cl);
  (* label order does not matter *)
  let a =
    M.counter reg "nscq_lbl_total" ~labels:[ ("a", "1"); ("b", "2") ]
  in
  M.inc a;
  let b =
    M.counter reg "nscq_lbl_total" ~labels:[ ("b", "2"); ("a", "1") ]
  in
  check_int "normalized label order" 1 (M.counter_value b)

let test_kind_clash () =
  let reg = M.create () in
  ignore (M.counter reg "nscq_clash");
  (match M.gauge reg "nscq_clash" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ());
  match M.histogram reg "nscq_clash" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ()

let test_invalid_name () =
  let reg = M.create () in
  match M.counter reg "bad name!" with
  | _ -> Alcotest.fail "invalid metric name accepted"
  | exception Invalid_argument _ -> ()

(* Concurrent bumps from multiple domains must sum exactly — the registry
   promises lock-free exact counting, not sampling. *)
let test_counter_concurrent_exact () =
  let reg = M.create () in
  let c = M.counter reg "nscq_concurrent_total" in
  let h = M.histogram reg "nscq_concurrent_us" in
  let domains = 4 and per_domain = 25_000 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              M.inc c;
              M.observe h (float_of_int (i land 1023))
            done))
  in
  List.iter Domain.join workers;
  check_int "counter sums exactly" (domains * per_domain) (M.counter_value c);
  check_int "histogram count sums exactly" (domains * per_domain)
    (M.hist_count h)

let test_gauge_set_max () =
  let reg = M.create () in
  let g = M.gauge reg "nscq_highwater" in
  M.set_max g 3.;
  M.set_max g 7.;
  M.set_max g 5.;
  check_float "monotone max" 7. (M.gauge_value g);
  M.set g 1.;
  check_float "set overrides" 1. (M.gauge_value g)

(* --- histograms --- *)

(* Satellite regression: the empty histogram's quantile is 0, not an
   exception and not a bucket edge — Server_stats renders latency
   quantiles before the first request arrives. *)
let test_empty_histogram_quantile () =
  let reg = M.create () in
  let h = M.histogram reg "nscq_empty_us" in
  check_float "p50 of empty" 0. (M.quantile h 0.5);
  check_float "p99 of empty" 0. (M.quantile h 0.99);
  check_int "count" 0 (M.hist_count h);
  check_float "sum" 0. (M.hist_sum h)

let test_histogram_quantile_monotone () =
  let reg = M.create () in
  let h = M.histogram reg "nscq_mono_us" in
  let st = Random.State.make [| 19; 82 |] in
  for _ = 1 to 2_000 do
    M.observe h (Random.State.float st 1e6)
  done;
  let ps = [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ] in
  let qs = List.map (M.quantile h) ps in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if a > b then
        Alcotest.failf "quantiles not monotone: %f > %f" a b;
      check_sorted rest
    | _ -> ()
  in
  check_sorted qs;
  (* each quantile is an upper bucket edge: at most 2x above the true
     rank value, never below any observation that bounds it *)
  List.iter
    (fun q -> if q <= 0. then Alcotest.fail "quantile collapsed to zero")
    qs

let test_histogram_buckets () =
  let reg = M.create () in
  let h = M.histogram reg "nscq_edges_us" in
  (* bucket 0 holds everything <= 2; quantile of a single observation is
     its bucket's upper edge *)
  M.observe h 0.5;
  check_float "tiny value lands in bucket 0 (edge 2)" 2. (M.quantile h 0.5);
  let reg = M.create () in
  let h = M.histogram reg "nscq_edges2_us" in
  M.observe h 1000.;
  let q = M.quantile h 0.5 in
  if q < 1000. || q > 2000. then
    Alcotest.failf "1000 should report an edge in [1000, 2000], got %f" q;
  check_float "sum accumulates the raw value" 1000. (M.hist_sum h)

(* --- rendering --- *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_render_text () =
  let reg = M.create () in
  let c = M.counter reg "nscq_reqs_total" ~help:"Requests" in
  M.add c 3;
  let cl = M.counter reg "nscq_reqs_total" ~labels:[ ("shard", "1") ] in
  M.inc cl;
  let g = M.gauge reg "nscq_depth" in
  M.set g 2.5;
  let h = M.histogram reg "nscq_lat_us" in
  M.observe h 3.;
  M.register_callback reg ~kind:`Counter "nscq_cb_total" (fun () -> 9.);
  let out = M.render_text reg in
  List.iter
    (fun sub ->
      if not (contains ~sub out) then
        Alcotest.failf "missing %S in:\n%s" sub out)
    [
      "# HELP nscq_reqs_total Requests";
      "# TYPE nscq_reqs_total counter";
      "nscq_reqs_total 3";
      "nscq_reqs_total{shard=\"1\"} 1";
      "# TYPE nscq_depth gauge";
      "nscq_depth 2.5";
      "# TYPE nscq_lat_us histogram";
      "nscq_lat_us_bucket{le=\"+Inf\"} 1";
      "nscq_lat_us_sum 3";
      "nscq_lat_us_count 1";
      "nscq_cb_total 9";
    ]

let test_render_json () =
  let reg = M.create () in
  let c = M.counter reg "nscq_j_total" ~labels:[ ("k", "v\"q") ] in
  M.inc c;
  let h = M.histogram reg "nscq_j_us" in
  M.observe h 5.;
  let out = M.render_json reg in
  List.iter
    (fun sub ->
      if not (contains ~sub out) then
        Alcotest.failf "missing %S in:\n%s" sub out)
    [
      "\"name\":\"nscq_j_total\"";
      "\"k\":\"v\\\"q\"";  (* quote in a label value is escaped *)
      "\"kind\":\"counter\"";
      "\"p95\"";
      "\"count\":1";
    ]

let test_callback_replacement () =
  let reg = M.create () in
  let cell = ref 1. in
  M.register_callback reg ~kind:`Gauge "nscq_cb_g" (fun () -> !cell);
  cell := 5.;
  if not (contains ~sub:"nscq_cb_g 5" (M.render_text reg)) then
    Alcotest.fail "callback not sampled at render time";
  (* re-registration replaces: a reopened handle takes over the series *)
  M.register_callback reg ~kind:`Gauge "nscq_cb_g" (fun () -> 8.);
  if not (contains ~sub:"nscq_cb_g 8" (M.render_text reg)) then
    Alcotest.fail "re-registration did not replace the callback"

(* --- traces --- *)

let test_span_tree () =
  let t = T.create "query" in
  T.add_attr t "records" "3";
  let x =
    T.span t "retrieve" (fun () ->
        T.span t "atom:a" (fun () -> ());
        T.span t "atom:b" (fun () -> T.add_attr t "hits" "1");
        17)
  in
  check_int "span returns f's value" 17 x;
  T.span t "eval" (fun () -> ());
  let root = T.finish t in
  check_string "root name" "query" root.T.name;
  Alcotest.(check (list string))
    "phases in recording order" [ "retrieve"; "eval" ]
    (List.map (fun (s : T.span) -> s.T.name) root.T.children);
  let retrieve = List.hd root.T.children in
  Alcotest.(check (list string))
    "atom spans in recording order" [ "atom:a"; "atom:b" ]
    (List.map (fun (s : T.span) -> s.T.name) retrieve.T.children);
  let atom_b = List.nth retrieve.T.children 1 in
  check_string "attr attached to innermost open span" "1"
    (List.assoc "hits" atom_b.T.attrs);
  check_string "root attr" "3" (List.assoc "records" root.T.attrs);
  List.iter
    (fun (s : T.span) ->
      if s.T.duration_s < 0. then Alcotest.fail "span left open")
    (root :: root.T.children)

let test_span_exception_safety () =
  let t = T.create "query" in
  (try T.span t "boom" (fun () -> failwith "inner") with Failure _ -> ());
  let root = T.finish t in
  match root.T.children with
  | [ s ] ->
    check_string "span closed by the exception path" "boom" s.T.name;
    if s.T.duration_s < 0. then Alcotest.fail "raised span left open"
  | _ -> Alcotest.fail "expected exactly the one raising span"

let test_trace_wire_roundtrip () =
  let t = T.create ~id:0x2ABCDEF "query" in
  T.add_attr t "records" "2";
  T.span t "retrieve" (fun () ->
      T.span t "atom:weird \tname=x%" (fun () -> T.add_attr t "k\t2" "v=1\n"));
  T.span t "verify" (fun () -> ());
  let root = T.finish t in
  let wire = T.to_wire ~id:(T.id t) root in
  match T.of_wire wire with
  | None -> Alcotest.fail "of_wire rejected its own to_wire"
  | Some (id, root') ->
    check_int "id round-trips" 0x2ABCDEF id;
    let rec strip (s : T.span) =
      Printf.sprintf "%s[%s](%s)" s.T.name
        (String.concat ","
           (List.map (fun (k, v) -> k ^ "=" ^ v) s.T.attrs))
        (String.concat ";" (List.map strip s.T.children))
    in
    if strip root' <> strip root then
      Alcotest.failf "tree changed across the wire:\n%s\nvs\n%s"
        (T.render root) (T.render root');
    (* timings survive to µs precision *)
    let rel = abs_float (root'.T.duration_s -. root.T.duration_s) in
    if rel > 2e-6 then Alcotest.fail "duration lost precision"

let test_trace_of_wire_garbage () =
  (match T.of_wire "" with
  | None -> ()
  | Some _ -> Alcotest.fail "empty string parsed as a trace");
  (match T.of_wire "0 2 5" with
  | None -> ()
  | Some _ -> Alcotest.fail "id payload parsed as a trace");
  match T.of_wire "trace zz\nnot\ta\tvalid\tline" with
  | None -> ()
  | Some _ -> Alcotest.fail "garbage header parsed as a trace"

let test_graft_and_make_span () =
  let t = T.create "scatter" in
  let sub = T.create ~id:(T.id t) "shard:0" in
  T.span sub "eval" (fun () -> ());
  T.graft t (T.finish sub);
  T.graft t
    (T.make_span ~name:"shard:1" ~start_s:0. ~duration_s:0.001
       ~attrs:[ ("remote", "true") ]
       ());
  let root = T.finish t in
  Alcotest.(check (list string))
    "grafted children in order" [ "shard:0"; "shard:1" ]
    (List.map (fun (s : T.span) -> s.T.name) root.T.children);
  (* grafting a finished subtree must not re-reverse its internals when
     the outer trace finishes *)
  let shard0 = List.hd root.T.children in
  Alcotest.(check (list string))
    "grafted subtree untouched" [ "eval" ]
    (List.map (fun (s : T.span) -> s.T.name) shard0.T.children)

(* --- slow-query log --- *)

let test_slow_log_line () =
  let t = T.create "query" in
  T.span t "retrieve" (fun () -> ());
  T.span t "eval" (fun () -> ());
  T.add_attr t "lookups" "10";
  let root = T.finish t in
  let line =
    Obs.Slow_log.line ~digest:"00c0ffee" ~trace:root ~latency_ms:12.34
      ~threshold_ms:10. ()
  in
  List.iter
    (fun sub ->
      if not (contains ~sub line) then
        Alcotest.failf "missing %S in %S" sub line)
    [ "slow_query"; "digest=00c0ffee"; "latency_ms=12.3"; "threshold_ms=10.0";
      "phases=[retrieve="; "eval="; "io=[lookups=10]" ];
  if String.contains line '\n' then Alcotest.fail "slow line must be one line";
  (* without a trace the line still identifies the request *)
  let bare = Obs.Slow_log.line ~latency_ms:1.5 ~threshold_ms:1. () in
  if contains ~sub:"phases" bare then
    Alcotest.fail "traceless line should omit phases"

let test_slow_log_ring () =
  let l = Obs.Slow_log.create ~capacity:4 () in
  check_int "capacity" 4 (Obs.Slow_log.capacity l);
  check_int "fresh length" 0 (Obs.Slow_log.length l);
  check_int "fresh dropped" 0 (Obs.Slow_log.dropped l);
  Obs.Slow_log.add l "a";
  Obs.Slow_log.add l "b";
  Alcotest.(check (list string))
    "oldest first before wrap" [ "a"; "b" ] (Obs.Slow_log.entries l);
  for i = 1 to 10 do
    Obs.Slow_log.add l (Printf.sprintf "line%d" i)
  done;
  check_int "length stays bounded" 4 (Obs.Slow_log.length l);
  check_int "dropped counts evictions" 8 (Obs.Slow_log.dropped l);
  Alcotest.(check (list string))
    "newest kept, oldest first"
    [ "line7"; "line8"; "line9"; "line10" ]
    (Obs.Slow_log.entries l);
  check_int "default capacity" 128 (Obs.Slow_log.capacity (Obs.Slow_log.create ()))

(* --- text exposition grammar ---

   Scrapers parse the text format line by line; one raw newline or
   unescaped quote inside a HELP string or a label value corrupts every
   series after it. The property feeds adversarial strings through real
   instruments and re-parses the whole exposition. *)

let name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* one sample line: name ('{' (label '=' '"' escaped '"' ','?)* '}')? ' ' float *)
let valid_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && name_char line.[!i] do
    incr i
  done;
  if !i = 0 then false
  else begin
    let ok = ref true in
    (if !i < n && line.[!i] = '{' then begin
       incr i;
       let closed = ref false in
       while (not !closed) && !ok do
         let start = !i in
         while !i < n && name_char line.[!i] do
           incr i
         done;
         if !i = start || !i >= n || line.[!i] <> '=' then ok := false
         else begin
           incr i;
           if !i >= n || line.[!i] <> '"' then ok := false
           else begin
             incr i;
             let fin = ref false in
             while (not !fin) && !ok do
               if !i >= n then (ok := false; fin := true)
               else begin
                 (match line.[!i] with
                 | '\\' ->
                   (* only the three legal escapes *)
                   if
                     !i + 1 >= n
                     || not (List.mem line.[!i + 1] [ '\\'; '"'; 'n' ])
                   then ok := false
                   else incr i
                 | '"' -> fin := true
                 | _ -> ());
                 incr i
               end
             done;
             if !ok then
               if !i < n && line.[!i] = ',' then incr i
               else if !i < n && line.[!i] = '}' then begin
                 incr i;
                 closed := true
               end
               else ok := false
           end
         end
       done
     end);
    !ok && !i < n
    && line.[!i] = ' '
    && Option.is_some
         (float_of_string_opt (String.sub line (!i + 1) (n - !i - 1)))
  end

let exposition_well_formed out =
  String.split_on_char '\n' out
  |> List.filter (fun l -> l <> "")
  |> List.for_all (fun line ->
         if String.length line > 0 && line.[0] = '#' then
           String.length line > 7
           && (String.sub line 0 7 = "# HELP " || String.sub line 0 7 = "# TYPE ")
         else valid_sample line)

let prop_exposition_well_formed =
  Testutil.qcheck_case ~name:"text exposition stays machine-parseable"
    QCheck.(pair string string)
    (fun (help, label_v) ->
      let reg = M.create () in
      let c = M.counter reg "nscq_prop_total" ~help ~labels:[ ("k", label_v) ] in
      M.add c 2;
      let g = M.gauge reg "nscq_prop_depth" ~help in
      M.set g 1.25;
      let h = M.histogram reg "nscq_prop_us" ~labels:[ ("k", label_v) ] in
      M.observe h 1.5;
      M.register_callback reg ~help ~labels:[ ("k", label_v) ] ~kind:`Gauge
        "nscq_prop_cb" (fun () -> 3.);
      exposition_well_formed (M.render_text reg))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "invalid name" `Quick test_invalid_name;
          Alcotest.test_case "concurrent exactness" `Quick
            test_counter_concurrent_exact;
          Alcotest.test_case "gauge set_max" `Quick test_gauge_set_max;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "empty quantile is 0" `Quick
            test_empty_histogram_quantile;
          Alcotest.test_case "quantile monotonicity" `Quick
            test_histogram_quantile_monotone;
          Alcotest.test_case "bucket edges" `Quick test_histogram_buckets;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "text exposition" `Quick test_render_text;
          Alcotest.test_case "json dump" `Quick test_render_json;
          Alcotest.test_case "callback replacement" `Quick
            test_callback_replacement;
          prop_exposition_well_formed;
        ] );
      ( "traces",
        [
          Alcotest.test_case "span tree" `Quick test_span_tree;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "wire round-trip" `Quick test_trace_wire_roundtrip;
          Alcotest.test_case "of_wire rejects garbage" `Quick
            test_trace_of_wire_garbage;
          Alcotest.test_case "graft and make_span" `Quick
            test_graft_and_make_span;
        ] );
      ( "slow-log",
        [
          Alcotest.test_case "line format" `Quick test_slow_log_line;
          Alcotest.test_case "bounded ring" `Quick test_slow_log_ring;
        ] );
    ]
