(* Differential tests for the optimized inverted-list kernels.

   The galloping intersection in Plist, the blocked 'C' payload format of
   Plist_blocks and the block-skipping cursors of Plist_stream must agree
   — byte for byte — with the frozen Plist_ref oracle on every input.
   Generators derive each posting deterministically from its node id, so
   equal ids always carry identical payloads: the invariant every
   intersection kernel relies on when lists come from the same builder. *)

module P = Invfile.Posting
module L = Invfile.Plist
module R = Invfile.Plist_ref
module B = Invfile.Plist_blocks
module St = Invfile.Plist_stream

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Children strictly increasing and above the node id, parent strictly
   below it (or -1): the shape of real builder output, where ids are
   pre-order DFS ranks. *)
let posting_of_id node =
  let h = (node * 2654435761) land 0x3FFFFFFF in
  let n_children = h land 3 in
  let step = 1 + ((h lsr 2) land 7) in
  let children = Array.init n_children (fun i -> node + 1 + ((i + 1) * step)) in
  let parent = if node = 0 || h land 16 = 0 then -1 else (h lsr 5) mod node in
  {
    P.node;
    children;
    leaf_count = (h lsr 8) land 15;
    post = node + ((h lsr 12) land 255);
    parent;
  }

(* Raw int lists keep QCheck's built-in shrinking; the transform to a
   sorted, deduplicated postings array happens inside each property. *)
let plist_of_ints ints =
  ints
  |> List.map (fun i -> i land 0xFFFFF)
  |> List.sort_uniq Int.compare
  |> List.map posting_of_id
  |> Array.of_list

let same name (a : L.t) (b : R.t) =
  if a <> b then
    Alcotest.failf "%s: kernels diverge (%d vs %d postings)" name
      (Array.length a) (Array.length b);
  (* arrays equal must also mean payloads byte-identical once re-encoded *)
  List.iter
    (fun codec ->
      if not (String.equal (L.to_bytes ~codec a) (L.to_bytes ~codec b)) then
        Alcotest.failf "%s: equal lists re-encode differently" name)
    [ L.Varint; L.Blocked ];
  true

(* --- binary operations vs the oracle --- *)

(* Two id bounds: 600 forces heavy overlap and dense blocks, 200_000
   yields sparse lists whose intersection exercises skipping. *)
let arb_pair bound =
  QCheck.(pair (list (int_bound bound)) (list (int_bound bound)))

let prop_inter (xs, ys) =
  let a = plist_of_ints xs and b = plist_of_ints ys in
  same "inter" (L.inter a b) (R.inter a b)
  && same "inter sym" (L.inter b a) (R.inter b a)

let prop_union (xs, ys) =
  let a = plist_of_ints xs and b = plist_of_ints ys in
  same "union" (L.union a b) (R.union a b)

(* Skewed sizes drive Plist.inter into its galloping branch. *)
let arb_skewed =
  QCheck.(pair (list_of_size Gen.(0 -- 4) (int_bound 200_000))
            (list_of_size Gen.(100 -- 400) (int_bound 200_000)))

let prop_inter_skewed (xs, ys) =
  let small = plist_of_ints xs and big = plist_of_ints ys in
  same "gallop" (L.inter small big) (R.inter small big)
  && same "gallop sym" (L.inter big small) (R.inter big small)

(* --- n-way operations, materialized and streamed --- *)

let arb_family bound =
  QCheck.(list_of_size Gen.(1 -- 5) (list (int_bound bound)))

(* Alternate payload codecs across the family: the streamed kernels must
   not care whether an input is a 'V' or a 'C' payload. *)
let encode_mixed lists =
  List.mapi
    (fun i l ->
      L.to_bytes ~codec:(if i land 1 = 0 then L.Blocked else L.Varint) l)
    lists

let prop_inter_many ints_lists =
  let lists = List.map plist_of_ints ints_lists in
  same "inter_many" (L.inter_many lists) (R.inter_many lists)
  && same "inter_many streamed"
       (St.inter_many (encode_mixed lists))
       (R.inter_many lists)

let counts_same name a b =
  if a <> b then
    Alcotest.failf "%s: multiset kernels diverge (%d vs %d entries)" name
      (Array.length a) (Array.length b);
  true

let prop_union_with_counts ints_lists =
  let lists = List.map plist_of_ints ints_lists in
  counts_same "union_with_counts" (L.union_with_counts lists)
    (R.union_with_counts lists)
  && counts_same "union_with_counts streamed"
       (St.union_with_counts (encode_mixed lists))
       (R.union_with_counts lists)

(* --- serialization: round trips and canonical bytes --- *)

let prop_roundtrip ints =
  let l = plist_of_ints ints in
  List.for_all
    (fun codec ->
      let payload = L.to_bytes ~codec l in
      let back = L.of_bytes payload in
      if back <> l then Alcotest.failf "round trip lost postings";
      if L.codec_of_bytes payload <> codec then
        Alcotest.failf "codec tag not preserved";
      (* canonical: re-encoding the decoded list reproduces the payload *)
      if not (String.equal (L.to_bytes ~codec back) payload) then
        Alcotest.failf "payload not canonical";
      true)
    [ L.Varint; L.Bitpacked; L.Blocked ]

(* --- cursors: sequential reads and skip_to --- *)

let cursors_of l =
  [
    ("mem", St.cursor_of_plist l);
    ("varint", St.cursor_of_bytes (L.to_bytes ~codec:L.Varint l));
    ("blocked", St.cursor_of_bytes (L.to_bytes ~codec:L.Blocked l));
  ]

let prop_cursor_drain ints =
  let l = plist_of_ints ints in
  List.for_all
    (fun (name, c) ->
      check_int (name ^ " remaining") (Array.length l) (St.remaining c);
      Array.iter
        (fun p ->
          match St.next c with
          | Some q when q = p -> ()
          | Some q ->
            Alcotest.failf "%s: decoded node %d, expected %d" name q.P.node
              p.P.node
          | None -> Alcotest.failf "%s: cursor ended early" name)
        l;
      check_bool (name ^ " exhausted") true (St.next c = None);
      true)
    (cursors_of l)

(* Ascending probes against every cursor source: skip_to must land on
   exactly the posting the oracle's lower_bound names, and account for
   every skipped posting in [remaining]. *)
let prop_cursor_skip_to (ints, probes) =
  let l = plist_of_ints ints in
  let probes = List.sort_uniq Int.compare (List.map (fun i -> i land 0xFFFFF) probes) in
  List.for_all
    (fun (name, c) ->
      List.iter
        (fun id ->
          let lb = R.lower_bound l id in
          (match St.skip_to c id with
          | Some p when lb < Array.length l && p = l.(lb) -> ()
          | None when lb = Array.length l -> ()
          | Some p ->
            Alcotest.failf "%s: skip_to %d landed on node %d" name id p.P.node
          | None -> Alcotest.failf "%s: skip_to %d ended early" name id);
          check_int
            (Printf.sprintf "%s remaining after skip_to %d" name id)
            (Array.length l - lb) (St.remaining c))
        probes;
      true)
    (cursors_of l)

(* --- block format edges --- *)

(* Lengths straddling the 128-posting block boundary, dense (consecutive
   ids — bitmap blocks) and sparse (stride 1009 — varint blocks). *)
let test_block_boundaries () =
  List.iter
    (fun n ->
      List.iter
        (fun (shape, stride) ->
          let l = Array.init n (fun i -> posting_of_id (i * stride)) in
          let payload = L.to_bytes ~codec:L.Blocked l in
          let back = L.of_bytes payload in
          if back <> l then
            Alcotest.failf "blocked round trip, %s n=%d" shape n;
          let c = St.cursor_of_bytes payload in
          check_int (Printf.sprintf "%s n=%d remaining" shape n) n
            (St.remaining c);
          (* drain through skip_to on every other posting *)
          let seen = ref 0 in
          let rec drain () =
            match St.next c with
            | None -> ()
            | Some p ->
              check_int "drained in order" l.(!seen).P.node p.P.node;
              incr seen;
              drain ()
          in
          drain ();
          check_int (Printf.sprintf "%s n=%d drained" shape n) n !seen)
        [ ("dense", 1); ("sparse", 1009) ])
    [ 0; 1; 127; 128; 129; 255; 256; 257; 1000 ]

(* The directory itself: spans, suffix counts and find_block. *)
let test_block_directory () =
  let l = Array.init 300 (fun i -> posting_of_id (i * 7)) in
  let body = B.encode l in
  let d = B.directory body ~pos:0 in
  check_int "total" 300 (B.total d);
  check_int "blocks" 3 (B.n_blocks d);
  check_int "suffix 0" 300 (B.suffix_count d 0);
  check_int "suffix last" 0 (B.suffix_count d (B.n_blocks d));
  for i = 0 to B.n_blocks d - 1 do
    let b = B.decode_block d i in
    check_int "block min" b.(0).P.node (B.block_min d i);
    check_int "block max" b.(Array.length b - 1).P.node (B.block_max d i)
  done;
  check_bool "decode" true (B.decode d = l);
  (* find_block: first block whose max covers the probe *)
  check_int "find first" 0 (B.find_block d ~start:0 0);
  check_int "find mid" 1 (B.find_block d ~start:0 (B.block_max d 0 + 1));
  check_int "find honors start" 2 (B.find_block d ~start:2 0);
  check_int "find past end" 3 (B.find_block d ~start:0 (B.block_max d 2 + 1))

(* Representation heuristic: consecutive ids become bitmap blocks
   (smaller than their varint encoding), stride-1009 ids stay varint. *)
let test_representation_heuristic () =
  check_bool "dense block" true (B.dense ~range:127 ~count:128);
  check_bool "sparse block" false (B.dense ~range:(127 * 1009) ~count:128);
  let dense = Array.init 256 posting_of_id in
  let sparse = Array.init 256 (fun i -> posting_of_id (i * 1009)) in
  let size l = String.length (L.to_bytes ~codec:L.Blocked l) in
  let vsize l = String.length (L.to_bytes ~codec:L.Varint l) in
  check_bool "bitmap no bigger than varint on dense runs" true
    (size dense <= vsize dense + 16);
  (* sparse lists pay only the directory over the plain varint form *)
  check_bool "blocked stays close to varint on sparse lists" true
    (size sparse <= vsize sparse + 16 * (256 / B.block_size + 1))

(* Truncating a blocked payload anywhere must be detected, not silently
   decoded: the directory pins every block's span, count and byte length. *)
let test_blocked_truncation_detected () =
  let l = Array.init 200 (fun i -> posting_of_id (i * 3)) in
  let payload = L.to_bytes ~codec:L.Blocked l in
  for len = 1 to String.length payload - 1 do
    let prefix = String.sub payload 0 len in
    match L.of_bytes prefix with
    | exception Storage.Codec.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "truncation at %d raised %s" len (Printexc.to_string e)
    | _ -> Alcotest.failf "truncation at %d decoded silently" len
  done

(* --- skew: the headline kernel path, 2 vs 100_000 postings --- *)

let test_skewed_intersection () =
  let big = Array.init 100_000 (fun i -> posting_of_id (i * 3)) in
  let small = [| posting_of_id 0; posting_of_id 150_000; posting_of_id 299_997 |] in
  let expect = R.inter small big in
  check_int "oracle finds the planted hits" 3 (Array.length expect);
  check_bool "gallop" true (L.inter small big = expect);
  check_bool "gallop sym" true (L.inter big small = expect);
  let payloads =
    [ L.to_bytes ~codec:L.Blocked small; L.to_bytes ~codec:L.Blocked big ]
  in
  check_bool "streamed" true (St.inter_many payloads = expect)

(* --- the shared inter_many contract --- *)

let empty_family_message =
  Invalid_argument "inter_many: empty intersection is the node universe"

let test_empty_family_contract () =
  Alcotest.check_raises "Plist" empty_family_message (fun () ->
      ignore (L.inter_many []));
  Alcotest.check_raises "Plist_stream" empty_family_message (fun () ->
      ignore (St.inter_many []));
  Alcotest.check_raises "Plist_ref" empty_family_message (fun () ->
      ignore (R.inter_many []))

(* --- degenerate queries reach the engine as answers, not crashes --- *)

module E = Containment.Engine

let test_degenerate_queries () =
  let values = List.map Testutil.v Testutil.licences_strings in
  let n_records = List.length values in
  List.iter
    (fun node_table ->
      let inv = Containment.Collection.of_values ~node_table values in
      List.iter
        (fun streamed ->
          let config = { E.default with E.streamed } in
          let ctx = Printf.sprintf "node_table:%b streamed:%b" node_table streamed in
          (* {} is contained in every record *)
          let r = E.query ~config inv (Testutil.v "{}") in
          check_int (ctx ^ " {} matches all") n_records (List.length r.E.records);
          (* {{}} needs some internal child anywhere below the root *)
          let r2 = E.query ~config inv (Testutil.v "{{}}") in
          check_bool (ctx ^ " {{}} answered") true
            (List.for_all (fun id -> id >= 0 && id < n_records) r2.E.records))
        [ false; true ])
    [ true; false ]

let qc = Testutil.qcheck_case

let () =
  Alcotest.run "kernels"
    [
      ( "differential",
        [
          qc ~name:"inter = ref (dense)" (arb_pair 600) prop_inter;
          qc ~name:"inter = ref (sparse)" (arb_pair 200_000) prop_inter;
          qc ~name:"inter = ref (skewed)" arb_skewed prop_inter_skewed;
          qc ~name:"union = ref" (arb_pair 600) prop_union;
          qc ~name:"inter_many = ref, mixed codecs" (arb_family 800)
            prop_inter_many;
          qc ~name:"union_with_counts = ref, mixed codecs" (arb_family 800)
            prop_union_with_counts;
        ] );
      ( "serialization",
        [
          qc ~name:"round trip + canonical, all codecs"
            QCheck.(list (int_bound 100_000))
            prop_roundtrip;
        ] );
      ( "cursors",
        [
          qc ~name:"drain all sources" QCheck.(list (int_bound 50_000))
            prop_cursor_drain;
          qc ~name:"skip_to = oracle lower_bound"
            QCheck.(pair (list (int_bound 50_000)) (list (int_bound 50_000)))
            prop_cursor_skip_to;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "boundary lengths" `Quick test_block_boundaries;
          Alcotest.test_case "directory" `Quick test_block_directory;
          Alcotest.test_case "representation heuristic" `Quick
            test_representation_heuristic;
          Alcotest.test_case "truncation detected" `Quick
            test_blocked_truncation_detected;
          Alcotest.test_case "skewed intersection" `Quick
            test_skewed_intersection;
        ] );
      ( "contract",
        [
          Alcotest.test_case "empty family message" `Quick
            test_empty_family_contract;
          Alcotest.test_case "degenerate engine queries" `Quick
            test_degenerate_queries;
        ] );
    ]
