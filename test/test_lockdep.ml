(* Runtime lock-order checking: double-acquire, A→B / B→A inversion and
   same-class nesting detection across domains, condition-wait
   bookkeeping, and the no-overhead path with checking off. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_s haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Every test leaves lockdep the way the environment configured it, so
   the suite behaves the same under `NSCQ_LOCKDEP=1 dune runtest`. *)
let env_enabled =
  match Sys.getenv_opt "NSCQ_LOCKDEP" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let with_lockdep enabled f () =
  Lockdep.reset ();
  Lockdep.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Lockdep.set_enabled env_enabled;
      Lockdep.reset ())
    f

(* --- double acquire --- *)

let test_double_acquire_raises =
  with_lockdep true (fun () ->
      let a = Lockdep.create "test.dbl" in
      Lockdep.lock a;
      (match Lockdep.lock a with
      | () -> Alcotest.fail "second acquire should raise Violation"
      | exception Lockdep.Violation msg ->
        check_bool "message names the class" true (contains_s msg "test.dbl"));
      Lockdep.unlock a)

let test_double_acquire_two_domains =
  with_lockdep true (fun () ->
      (* each domain double-acquires its own lock; both must be caught
         independently, proving held-state is per thread *)
      let caught =
        List.init 2 (fun i ->
            Domain.spawn (fun () ->
                let m = Lockdep.create (Printf.sprintf "test.dbl.%d" i) in
                Lockdep.lock m;
                let caught =
                  match Lockdep.lock m with
                  | () -> false
                  | exception Lockdep.Violation _ -> true
                in
                Lockdep.unlock m;
                caught))
        |> List.map Domain.join
      in
      check_bool "both domains detected" true (List.for_all Fun.id caught))

(* --- lock-order cycle --- *)

let test_cycle_detected =
  with_lockdep true (fun () ->
      let a = Lockdep.create "test.A" and b = Lockdep.create "test.B" in
      (* domain 1 establishes A -> B, domain 2 then takes B -> A: the
         classic inversion, provoked sequentially so the test itself
         cannot deadlock — lockdep flags the *potential*. *)
      Domain.join
        (Domain.spawn (fun () ->
             Lockdep.lock a;
             Lockdep.lock b;
             Lockdep.unlock b;
             Lockdep.unlock a));
      Domain.join
        (Domain.spawn (fun () ->
             Lockdep.lock b;
             Lockdep.lock a;
             Lockdep.unlock a;
             Lockdep.unlock b));
      let vs = Lockdep.violations () in
      check_int "exactly one violation" 1 (List.length vs);
      let v = List.hd vs in
      check_bool "cycle names both classes" true
        (contains_s v "potential deadlock"
        && contains_s v "test.A" && contains_s v "test.B");
      let r = Lockdep.report () in
      check_bool "report shows the A->B edge" true
        (contains_s r "test.A -> test.B"))

let test_consistent_order_is_clean =
  with_lockdep true (fun () ->
      let a = Lockdep.create "test.oA" and b = Lockdep.create "test.oB" in
      let worker () =
        Domain.spawn (fun () ->
            for _ = 1 to 50 do
              Lockdep.lock a;
              Lockdep.lock b;
              Lockdep.unlock b;
              Lockdep.unlock a
            done)
      in
      let d1 = worker () and d2 = worker () in
      Domain.join d1;
      Domain.join d2;
      check_int "A->B everywhere: no violations" 0
        (List.length (Lockdep.violations ())))

let test_same_class_nesting =
  with_lockdep true (fun () ->
      let a = Lockdep.create "test.cls" and b = Lockdep.create "test.cls" in
      Lockdep.lock a;
      Lockdep.lock b;
      Lockdep.unlock b;
      Lockdep.unlock a;
      check_bool "same-class nesting recorded" true
        (List.exists
           (fun v -> contains_s v "same-class nesting")
           (Lockdep.violations ())))

(* --- condition wait --- *)

let test_wait_bookkeeping =
  with_lockdep true (fun () ->
      let m = Lockdep.create "test.wait" in
      let cond = Condition.create () in
      let ready = ref false in
      let d =
        Domain.spawn (fun () ->
            Lockdep.lock m;
            while not !ready do
              Lockdep.wait cond m
            done;
            Lockdep.unlock m)
      in
      Thread.delay 0.05;
      Lockdep.protect m (fun () ->
          ready := true;
          Condition.broadcast cond);
      Domain.join d;
      check_int "wait leaves no stale held state" 0
        (List.length (Lockdep.violations ())))

(* --- disabled path --- *)

let test_disabled_no_bookkeeping =
  with_lockdep false (fun () ->
      check_bool "disabled" false (Lockdep.enabled ());
      let a = Lockdep.create "test.off.A" and b = Lockdep.create "test.off.B" in
      (* inverted orders that would be flagged when enabled *)
      Lockdep.lock a; Lockdep.lock b; Lockdep.unlock b; Lockdep.unlock a;
      Lockdep.lock b; Lockdep.lock a; Lockdep.unlock a; Lockdep.unlock b;
      for _ = 1 to 10_000 do
        Lockdep.lock a;
        Lockdep.unlock a
      done;
      check_int "nothing recorded" 0 (List.length (Lockdep.violations ()));
      check_bool "graph stays empty" true
        (contains_s (Lockdep.report ()) "(empty)"))

let test_protect_unwinds =
  with_lockdep true (fun () ->
      let m = Lockdep.create "test.unwind" in
      (match Lockdep.protect m (fun () -> failwith "boom") with
      | _ -> Alcotest.fail "exception should propagate"
      | exception Failure _ -> ());
      (* the lock must have been released: re-acquiring is legal *)
      check_int "protect returns through exceptions" 7
        (Lockdep.protect m (fun () -> 7)))

let () =
  Alcotest.run "lockdep"
    [
      ( "detection",
        [
          Alcotest.test_case "double acquire raises" `Quick
            test_double_acquire_raises;
          Alcotest.test_case "double acquire on two domains" `Quick
            test_double_acquire_two_domains;
          Alcotest.test_case "A->B / B->A cycle" `Quick test_cycle_detected;
          Alcotest.test_case "consistent order clean" `Quick
            test_consistent_order_is_clean;
          Alcotest.test_case "same-class nesting" `Quick
            test_same_class_nesting;
        ] );
      ( "integration",
        [
          Alcotest.test_case "condition wait" `Quick test_wait_bookkeeping;
          Alcotest.test_case "protect unwinds" `Quick test_protect_unwinds;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "no overhead, no records" `Quick
            test_disabled_no_bookkeeping;
        ] );
    ]
