(* End-to-end engine tests: backends, scopes, verification, caching,
   workload statistics, and persistence across reopen. *)

module E = Containment.Engine
module S = Containment.Semantics
module IF = Invfile.Inverted_file

let check_records = Alcotest.(check (list int))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let q_uk = "{{UK, {A, motorbike}}}"

(* --- backends produce identical results --- *)

let with_backend backend f =
  match backend with
  | `Mem -> f (Containment.Collection.of_strings Testutil.licences_strings)
  | `Hash ->
    Testutil.with_temp_path ".tch" (fun path ->
        let inv =
          Containment.Collection.of_strings
            ~backend:(Containment.Collection.Hash path) Testutil.licences_strings
        in
        Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv))
  | `Btree ->
    Testutil.with_temp_path ".tcb" (fun path ->
        let inv =
          Containment.Collection.of_strings
            ~backend:(Containment.Collection.Btree path) Testutil.licences_strings
        in
        Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv))

let test_backends_agree () =
  let expected = ref None in
  List.iter
    (fun backend ->
      with_backend backend (fun inv ->
          let r = (E.query inv (Testutil.v q_uk)).E.records in
          match !expected with
          | None -> expected := Some r
          | Some e -> check_records "backend agreement" e r))
    [ `Mem; `Hash; `Btree ]

let test_hash_backend_persists () =
  Testutil.with_temp_path ".tch" (fun path ->
      let inv =
        Containment.Collection.of_strings
          ~backend:(Containment.Collection.Hash path) Testutil.licences_strings
      in
      let before = (E.query inv (Testutil.v q_uk)).E.records in
      IF.close inv;
      let inv2 = IF.open_store (Storage.Hash_store.open_existing path) in
      Fun.protect
        ~finally:(fun () -> IF.close inv2)
        (fun () ->
          let after = (E.query inv2 (Testutil.v q_uk)).E.records in
          check_records "reopened results" before after;
          check_int "records preserved" 4 (IF.record_count inv2)))

(* --- caching --- *)

let test_static_cache_transparent () =
  with_backend `Hash (fun inv ->
      let q = Testutil.v q_uk in
      let cold = (E.query inv q).E.records in
      Containment.Collection.with_static_cache inv ~budget:250;
      let warm = (E.query inv q).E.records in
      check_records "same results" cold warm;
      check_bool "cache hits happened" true
        (Storage.Io_stats.hits (IF.lookup_stats inv) > 0))

let test_cache_reduces_io () =
  with_backend `Hash (fun inv ->
      let q = Testutil.v q_uk in
      let io () = Storage.Io_stats.reads (IF.store inv).Storage.Kv.stats in
      (* warm-up parse etc. *)
      ignore (E.query inv q);
      let r0 = io () in
      ignore (E.query inv q);
      let uncached_reads = io () - r0 in
      Containment.Collection.with_static_cache inv ~budget:250;
      let r1 = io () in
      ignore (E.query inv q);
      let cached_reads = io () - r1 in
      check_bool
        (Printf.sprintf "fewer store reads with cache (%d < %d)" cached_reads
           uncached_reads)
        true
        (cached_reads < uncached_reads))

let test_lru_cache_transparent () =
  with_backend `Hash (fun inv ->
      let q = Testutil.v q_uk in
      let cold = (E.query inv q).E.records in
      IF.attach_cache inv (Invfile.Cache.create Invfile.Cache.Lru ~capacity:2);
      let once = (E.query inv q).E.records in
      let twice = (E.query inv q).E.records in
      check_records "lru same results" cold once;
      check_records "lru stable" once twice)

(* --- verification option --- *)

let test_verify_noop_on_sound_results () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let q = Testutil.v q_uk in
  let plain = (E.query inv q).E.records in
  let verified = (E.query ~config:{ E.default with E.verify = true } inv q).E.records in
  check_records "verify keeps sound results" plain verified

let test_verify_fixes_paper_td () =
  (* the published top-down variant over-approximates; verify repairs it *)
  let inv = Testutil.mem_collection [ "{x, {a, {b}}, {a, {c}}}" ] in
  let q = Testutil.v "{x, {a, {b}, {c}}}" in
  let config = { E.default with E.algorithm = E.Top_down_paper } in
  check_records "unverified over-approximates" [ 0 ] (E.query ~config inv q).E.records;
  check_records "verified exact" []
    (E.query ~config:{ config with E.verify = true } inv q).E.records

(* --- workload statistics --- *)

let test_run_workload_counts () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let queries = [ Testutil.v q_uk; Testutil.v "{Mars}"; Testutil.v "{Paris}" ] in
  let stats = E.run_workload inv queries in
  check_int "queries" 3 stats.E.queries;
  check_int "positives: q_uk (3 records) and Paris" 2 stats.E.positives;
  check_int "results total 3+0+1" 4 stats.E.results_total;
  check_bool "elapsed sane" true (stats.E.elapsed_s >= 0.)

let test_run_workload_cache_counters () =
  with_backend `Hash (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:250;
      let stats = E.run_workload inv [ Testutil.v q_uk; Testutil.v q_uk ] in
      check_bool "hits counted" true (stats.E.cache_hits > 0))

(* --- result materialization --- *)

let test_record_values () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let r = E.query inv (Testutil.v "{Boston}") in
  match E.record_values inv r with
  | [ v ] ->
    Alcotest.check Testutil.value_testable "Tim's record"
      (Testutil.v (List.nth Testutil.licences_strings 1))
      v
  | l -> Alcotest.failf "expected one record, got %d" (List.length l)

(* --- naive scan via engine --- *)

let test_naive_scan_matches_indexed () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  List.iter
    (fun qs ->
      let q = Testutil.v qs in
      check_records ("naive = indexed for " ^ qs)
        (E.query inv q).E.records
        (E.query ~config:{ E.default with E.algorithm = E.Naive_scan } inv q).E.records)
    [ q_uk; "{Mars}"; "{USA, {UK, {A, motorbike}}}"; "{{FR, {B}}}" ]

let test_matching_records_api () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let q = Containment.Query.of_value (Testutil.v "{USA}") in
  Alcotest.(check (list int)) "matching_records" [ 1; 3 ]
    (Containment.Naive.matching_records inv q)

(* --- queries drawn from a bigger synthetic collection across configs --- *)

let test_cross_config_consistency_synthetic () =
  let values =
    Datagen.Synthetic.values
      (Datagen.Synthetic.make ~seed:21
         ~params:(Datagen.Synthetic.params_of_shape Datagen.Synthetic.Wide)
         (Datagen.Synthetic.Zipfian 0.7))
      150
  in
  let inv = Containment.Collection.of_values values in
  let queries = Datagen.Workload.benchmark_queries ~seed:3 ~count:20 inv in
  let fi = Containment.Filter_index.build inv in
  List.iter
    (fun (wq : Datagen.Workload.query) ->
      let q = wq.Datagen.Workload.value in
      let base = (E.query inv q).E.records in
      List.iter
        (fun config ->
          check_records "config-independent results" base (E.query ~config inv q).E.records)
        [
          { E.default with E.algorithm = E.Top_down };
          { E.default with E.algorithm = E.Naive_scan };
          { E.default with E.verify = true };
          { E.default with E.filter_index = Some fi };
        ])
    queries

(* --- tracing --- *)

module T = Obs.Trace

let span_names (s : T.span) = List.map (fun (c : T.span) -> c.T.name) s.T.children
let attr name (s : T.span) = List.assoc_opt name s.T.attrs
let int_attr name s = Option.bind (attr name s) int_of_string_opt

(* The acceptance bar for the trace subsystem: the root span's recorded
   I/O deltas must reconcile exactly with the store's own Io_stats
   counters around the query — the trace is the same truth, sliced per
   query. *)
let test_trace_reconciles_io_stats () =
  with_backend `Hash (fun inv ->
      let q = Testutil.v q_uk in
      let snap () =
        let lk = IF.lookup_stats inv
        and st = (IF.store inv).Storage.Kv.stats in
        ( Storage.Io_stats.lookups lk,
          Storage.Io_stats.hits lk,
          Storage.Io_stats.misses lk,
          Storage.Io_stats.reads st,
          Storage.Io_stats.bytes_read st )
      in
      let l0, h0, m0, r0, b0 = snap () in
      let trace = T.create "query" in
      let result = E.query ~trace inv q in
      let l1, h1, m1, r1, b1 = snap () in
      let root = T.finish trace in
      check_int "lookups delta" (l1 - l0) (Option.get (int_attr "lookups" root));
      check_int "hits delta" (h1 - h0) (Option.get (int_attr "hits" root));
      check_int "misses delta" (m1 - m0) (Option.get (int_attr "misses" root));
      (match int_attr "reads" root with
      | Some reads -> check_int "reads delta" (r1 - r0) reads
      | None -> check_int "no reads recorded" 0 (r1 - r0));
      (match int_attr "bytes_read" root with
      | Some bytes -> check_int "bytes delta" (b1 - b0) bytes
      | None -> check_int "no bytes recorded" 0 (b1 - b0));
      check_int "result count attr" (List.length result.E.records)
        (Option.get (int_attr "records" root));
      (* the phase spans are present, in evaluation order *)
      Alcotest.(check (list string))
        "phases" [ "retrieve"; "eval"; "verify" ] (span_names root);
      (* per-atom retrieval: one child span per distinct query atom, and
         their hit+miss deltas sum to the retrieve phase's lookups *)
      let retrieve = List.hd root.T.children in
      let atom_io =
        List.fold_left
          (fun acc s ->
            acc
            + Option.value ~default:0 (int_attr "hits" s)
            + Option.value ~default:0 (int_attr "misses" s))
          0 retrieve.T.children
      in
      check_int "atom spans account for retrieve lookups"
        (Option.get (int_attr "lookups" retrieve))
        atom_io)

let test_trace_absent_records_nothing () =
  with_backend `Mem (fun inv ->
      (* no ?trace: the result must be identical — tracing is opt-in and
         must not perturb evaluation *)
      let q = Testutil.v q_uk in
      let plain = (E.query inv q).E.records in
      let trace = T.create "query" in
      let traced = (E.query ~trace inv q).E.records in
      check_records "same results with and without trace" plain traced)

(* Satellite regression: under streamed retrieval the engine intersects
   lists straight from their encoded payloads, bypassing the decoded-list
   cache entirely — so the trace must show zero cache hits and no
   per-atom retrieve spans (there is no materialization phase to time). *)
let test_trace_streamed_no_cache_hits () =
  with_backend `Hash (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:250;
      let q = Testutil.v q_uk in
      (* warm the cache through the materialized path *)
      let warm = (E.query inv q).E.records in
      let config = { E.default with E.streamed = true } in
      let trace = T.create "query" in
      let r = E.query ~config ~trace inv q in
      let root = T.finish trace in
      check_records "streamed agrees" warm r.E.records;
      check_int "streamed hits are structurally 0" 0
        (Option.get (int_attr "hits" root));
      check_bool "no retrieve span under streamed" true
        (not (List.mem "retrieve" (span_names root))))

let test_trace_batch_positional () =
  with_backend `Mem (fun inv ->
      let qs = [ Testutil.v q_uk; Testutil.v "{{zzz_nowhere}}"; Testutil.v q_uk ] in
      (* trace only the middle query; results must match the untraced run
         positionally *)
      let plain = List.map (fun r -> r.E.records) (E.query_batch inv qs) in
      let t = T.create "query" in
      let traced =
        E.query_batch ~traces:[ None; Some t; None ] inv qs
        |> List.map (fun r -> r.E.records)
      in
      Alcotest.(check (list (list int))) "batch results unchanged" plain traced;
      let root = T.finish t in
      check_int "traced slot records its own result count"
        (List.length (List.nth plain 1))
        (Option.get (int_attr "records" root)))

(* Satellite: the EXPLAIN profile and an independent traced run of the
   same query must tell one story — the profile's phase list is exactly
   the trace's phase spans (same names, same order), each phase's
   [actual] equals the count the trace span recorded, and the estimate
   chain links verify's input to eval's output. *)
let test_explain_profile_reconciles_trace () =
  with_backend `Mem (fun inv ->
      let q = Testutil.v q_uk in
      let profile = E.explain_profile inv q in
      let trace = T.create "query" in
      let result = E.query ~trace inv q in
      let root = T.finish trace in
      Alcotest.(check (list string))
        "profile phases = trace spans, in order" (span_names root)
        (List.map
           (fun (p : Obs.Explain.phase) -> p.Obs.Explain.phase)
           profile.Obs.Explain.phases);
      let phase name =
        match
          List.find_opt
            (fun (p : Obs.Explain.phase) -> p.Obs.Explain.phase = name)
            profile.Obs.Explain.phases
        with
        | Some p -> p
        | None -> Alcotest.failf "profile lacks phase %S" name
      in
      let span name =
        List.find (fun (s : T.span) -> s.T.name = name) root.T.children
      in
      check_int "eval actual = traced candidates"
        (Option.get (int_attr "candidates" (span "eval")))
        (phase "eval").Obs.Explain.actual;
      check_int "verify actual = traced kept"
        (Option.get (int_attr "kept" (span "verify")))
        (phase "verify").Obs.Explain.actual;
      check_int "verify est = eval actual" (phase "eval").Obs.Explain.actual
        (phase "verify").Obs.Explain.est;
      check_int "retrieve actual = distinct query atoms"
        (List.length (span "retrieve").T.children)
        (phase "retrieve").Obs.Explain.actual;
      check_int "profile records = query result count"
        (List.length result.E.records)
        profile.Obs.Explain.records;
      (* the eval estimate is the rarest planned atom's posting length *)
      match profile.Obs.Explain.atoms with
      | rarest :: _ ->
        check_int "eval est = rarest list length" rarest.Obs.Explain.list_len
          (phase "eval").Obs.Explain.est
      | [] -> Alcotest.fail "profile lists no atoms")

let () =
  Alcotest.run "engine"
    [
      ( "backends",
        [
          Alcotest.test_case "agree" `Quick test_backends_agree;
          Alcotest.test_case "hash persists" `Quick test_hash_backend_persists;
        ] );
      ( "caching",
        [
          Alcotest.test_case "static transparent" `Quick test_static_cache_transparent;
          Alcotest.test_case "reduces io" `Quick test_cache_reduces_io;
          Alcotest.test_case "lru transparent" `Quick test_lru_cache_transparent;
        ] );
      ( "verify",
        [
          Alcotest.test_case "no-op when sound" `Quick test_verify_noop_on_sound_results;
          Alcotest.test_case "repairs published TD" `Quick test_verify_fixes_paper_td;
        ] );
      ( "workload",
        [
          Alcotest.test_case "counts" `Quick test_run_workload_counts;
          Alcotest.test_case "cache counters" `Quick test_run_workload_cache_counters;
        ] );
      ( "results",
        [
          Alcotest.test_case "record values" `Quick test_record_values;
          Alcotest.test_case "naive = indexed" `Quick test_naive_scan_matches_indexed;
          Alcotest.test_case "matching_records" `Quick test_matching_records_api;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "synthetic cross-config" `Quick
            test_cross_config_consistency_synthetic;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "reconciles with Io_stats" `Quick
            test_trace_reconciles_io_stats;
          Alcotest.test_case "opt-in, same results" `Quick
            test_trace_absent_records_nothing;
          Alcotest.test_case "streamed: zero cache hits" `Quick
            test_trace_streamed_no_cache_hits;
          Alcotest.test_case "batch: positional traces" `Quick
            test_trace_batch_positional;
          Alcotest.test_case "explain reconciles with trace" `Quick
            test_explain_profile_reconciles_trace;
        ] );
    ]
