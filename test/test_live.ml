(* Live-store suite: deterministic lifecycle tests, the qcheck
   differential (random insert/delete/query/flush/compact/reopen
   interleavings against a rebuild-from-scratch oracle), and the crash
   sweep — kill the store at every kv write boundary and at every named
   flush/compaction step, reopen, and require the recovered store to be
   byte-equivalent to a rebuild over exactly the acknowledged writes
   (the one in-flight write may also survive: durable-but-unacknowledged
   is allowed, lost-but-acknowledged is not). *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module S = Containment.Semantics
module L = Live.Live_store
module V = Nested.Value

let v = Nested.Syntax.of_string
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ids = Alcotest.(check (list int))

let with_temp_dir f =
  let dir = Filename.temp_file "nscq_live_" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* --- the rebuild oracle ---

   The spec of every live query: build one fresh store over the live
   records (ascending gid order), query it, translate local ids back
   through the gid list. *)

let live_pairs store = List.rev (L.fold_live store ~init:[] ~f:(fun acc gid value -> (gid, value) :: acc))

let oracle_query ?(config = E.default) store q =
  let pairs = live_pairs store in
  let inv =
    let b = Invfile.Builder.create (Storage.Mem_store.create ()) in
    List.iter (fun (_, value) -> ignore (Invfile.Builder.add_value b value)) pairs;
    Invfile.Builder.finish b
  in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  let gids = Array.of_list (List.map fst pairs) in
  List.map (fun local -> gids.(local)) (E.query ~config inv q).E.records

let oracle_join ?(config = Join.Engine.default) store values =
  let pairs = live_pairs store in
  let inv =
    let b = Invfile.Builder.create (Storage.Mem_store.create ()) in
    List.iter (fun (_, value) -> ignore (Invfile.Builder.add_value b value)) pairs;
    Invfile.Builder.finish b
  in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  let gids = Array.of_list (List.map fst pairs) in
  List.map
    (fun (o, local) -> (o, gids.(local)))
    (Join.Engine.join ~config inv values).Join.Engine.pairs

let configs =
  [
    ("hom", E.default);
    ("iso", { E.default with E.embedding = S.Iso });
    ("homeo", { E.default with E.embedding = S.Homeo });
    ("superset", { E.default with E.join = S.Superset });
  ]

let probes =
  List.map v
    [
      "{UK, {A, motorbike}}";
      "{USA}";
      "{car}";
      "{nothere}";
      "{B, car}";
      "{a, {b}}";
      "{}";
    ]

let assert_equiv ?(ctx = "") store =
  List.iter
    (fun q ->
      List.iter
        (fun (cname, config) ->
          check_ids
            (Printf.sprintf "%s%s %s" ctx cname (V.to_string q))
            (oracle_query ~config store q)
            (L.query ~config store q))
        configs)
    probes

let licences = List.map v Testutil.licences_strings

(* manual control everywhere by default: no auto flush, no compactor *)
let manual = { L.default with L.flush_records = 0; max_segments = 0 }

(* --- basic lifecycle --- *)

let test_basic () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  let gids = List.map (L.insert store) licences in
  check_ids "gids are 0.." [ 0; 1; 2; 3 ] gids;
  check_int "live" 4 (L.live_records store);
  check_int "memtable holds all" 4 (L.memtable_records store);
  assert_equiv ~ctx:"memtable: " store;
  (* seal *)
  check_int "flush seals all" 4 (L.flush store);
  check_int "one segment" 1 (L.segment_count store);
  check_int "memtable empty" 0 (L.memtable_records store);
  assert_equiv ~ctx:"sealed: " store;
  (* mixed memtable + segment *)
  let gid_berlin = L.insert store (v "{Berlin, DE, {DE, {A, car}}}") in
  check_int "ids keep climbing" 4 gid_berlin;
  assert_equiv ~ctx:"mixed: " store;
  (* sealed delete -> tombstone; memtable delete -> in place *)
  check_bool "delete sealed" true (L.delete store 1);
  check_int "tombstone recorded" 1 (L.tombstone_count store);
  check_bool "delete memtable" true (L.delete store gid_berlin);
  check_int "no memtable tombstone" 1 (L.tombstone_count store);
  check_bool "double delete" false (L.delete store 1);
  check_bool "unknown id" false (L.delete store 99);
  check_int "live after deletes" 3 (L.live_records store);
  assert_equiv ~ctx:"deleted: " store;
  check_bool "record_value dead" true (L.record_value store 1 = None);
  check_bool "record_value live" true (L.record_value store 0 = Some (List.hd licences))

let test_flush_and_compact () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  List.iter
    (fun value ->
      ignore (L.insert store value);
      ignore (L.flush store))
    licences;
  check_int "one segment per flush" 4 (L.segment_count store);
  check_int "empty flush seals nothing" 0 (L.flush store);
  check_bool "delete sealed" true (L.delete store 2);
  assert_equiv ~ctx:"4 segments: " store;
  (* one step merges exactly two *)
  check_bool "compact pair" true (L.compact store = Some 2);
  check_int "segments after pair merge" 3 (L.segment_count store);
  assert_equiv ~ctx:"3 segments: " store;
  (* full merge purges the tombstone *)
  check_bool "compact all" true (L.compact ~all:true store = Some 3);
  check_int "single segment" 1 (L.segment_count store);
  check_int "tombstones purged" 0 (L.tombstone_count store);
  check_int "live unchanged" 3 (L.live_records store);
  assert_equiv ~ctx:"compacted: " store;
  check_bool "nothing left to compact" true (L.compact store = None);
  (* deleted gid stays dead after purge, new ids never reuse it *)
  check_bool "purged id is gone" true (L.record_value store 2 = None);
  check_int "ids never reused" 4 (L.insert store (v "{x}"))

let test_reopen_replays_wal () =
  with_temp_dir @@ fun dir ->
  let expected =
    let store = L.create ~config:manual dir in
    List.iter (fun value -> ignore (L.insert store value)) licences;
    ignore (L.flush store);
    ignore (L.insert store (v "{Kyoto, JP, {JP, {C, car}}}"));
    ignore (L.delete store 1);
    ignore (L.delete store 4);
    let expected = live_pairs store in
    (* no flush: the memtable insert and both deletes live only in the WAL *)
    L.close store;
    expected
  in
  let store = L.open_store ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  check_bool "replay restores exactly the acknowledged state" true
    (live_pairs store = expected);
  check_int "next_id beyond every replayed id" 5 (L.next_id store);
  assert_equiv ~ctx:"reopened: " store;
  (* deletes of sealed records must survive as tombstones *)
  check_int "tombstone replayed" 1 (L.tombstone_count store);
  check_bool "memtable delete replayed" true (L.record_value store 4 = None)

let test_auto_flush () =
  with_temp_dir @@ fun dir ->
  let config = { manual with L.flush_records = 3 } in
  let store = L.create ~config dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  List.iteri
    (fun i value ->
      ignore (L.insert store value);
      if i < 2 then check_int "not yet" 0 (L.segment_count store))
    licences;
  check_int "sealed at the threshold" 1 (L.segment_count store);
  check_int "fourth insert back in the memtable" 1 (L.memtable_records store);
  assert_equiv ~ctx:"auto-flushed: " store

let test_auto_compact () =
  with_temp_dir @@ fun dir ->
  let config =
    { L.flush_records = 2; max_segments = 2; auto_compact = true;
      wal_sync = false; wrap = (fun _ kv -> kv) }
  in
  let store = L.create ~config dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  for i = 0 to 19 do
    ignore (L.insert store (v (Printf.sprintf "{r%d, a, {b, c%d}}" i (i mod 3))))
  done;
  (* the compactor runs on its own domain; give it a bounded grace period *)
  let deadline = Unix.gettimeofday () +. 10. in
  while
    L.segment_count store > 2 && Unix.gettimeofday () < deadline
  do
    Thread.yield ();
    Unix.sleepf 0.01 [@lint.allow io]
  done;
  check_bool "background compaction caught up"
    true
    (L.segment_count store <= 2);
  check_int "no records lost" 20 (L.live_records store);
  let q = v "{a, {b, c1}}" in
  check_ids "query agrees after background merges" (oracle_query store q)
    (L.query store q)

let test_join_matches_naive () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  List.iter (fun value -> ignore (L.insert store value)) licences;
  ignore (L.flush store);
  List.iter
    (fun s -> ignore (L.insert store (v s)))
    [ "{UK, {A, motorbike}, extra}"; "{Paris, FR}" ];
  ignore (L.delete store 1);
  let outers =
    List.map v [ "{UK, {A, motorbike}}"; "{car}"; "{nothere}"; "{Paris}" ]
  in
  let pp ps = String.concat " " (List.map (fun (o, g) -> Printf.sprintf "(%d,%d)" o g) ps) in
  Alcotest.(check string) "join equals rebuild-oracle join"
    (pp (oracle_join store outers)) (pp (L.join store outers))

let test_query_batch () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  List.iter (fun value -> ignore (L.insert store value)) licences;
  ignore (L.flush store);
  ignore (L.insert store (v "{Berlin, DE}"));
  ignore (L.delete store 2);
  let got = L.query_batch store probes in
  List.iteri
    (fun i q ->
      check_ids (V.to_string q) (oracle_query store q) (List.nth got i))
    probes

let test_rejections () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  Alcotest.check_raises "atom insert rejected"
    (Invalid_argument
       "Live_store.insert: value must be a set, not a bare atom") (fun () ->
      ignore (L.insert store (V.atom "a")));
  (let scratch =
     let b = Invfile.Builder.create (Storage.Mem_store.create ()) in
     ignore (Invfile.Builder.add_value b (v "{a}"));
     Invfile.Builder.finish b
   in
   let fi = Containment.Filter_index.build scratch in
   IF.close scratch;
   try
     ignore
       (L.query
          ~config:{ E.default with E.filter_index = Some fi }
          store (v "{a}"));
     Alcotest.fail "filter_index config must be rejected"
   with Invalid_argument _ -> ());
  Alcotest.check_raises "create refuses an existing live dir"
    (Invalid_argument
       (Printf.sprintf "Live_store.create: %s is already a live store" dir))
    (fun () -> ignore (L.create dir))

let test_verify_healthy () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  List.iter (fun value -> ignore (L.insert store value)) licences;
  ignore (L.flush store);
  ignore (L.insert store (v "{x, y}"));
  ignore (L.delete store 0);
  check_bool "verify finds nothing" true (L.verify store = []);
  check_bool "repair has nothing to do" true (L.repair store = []);
  check_bool "is_live_dir" true (L.is_live_dir dir);
  check_bool "not a live dir" false (L.is_live_dir (Filename.concat dir "nope"))

(* --- qcheck differential: random interleavings vs the rebuild oracle --- *)

type op = Insert of V.t | Delete of int | Flush | Compact | Reopen

let gen_op st =
  let open QCheck.Gen in
  match int_range 0 9 st with
  | 0 | 1 | 2 | 3 | 4 -> Insert (Testutil.gen_set ~max_depth:3 ~max_width:4 st)
  | 5 | 6 -> Delete (int_range 0 40 st)
  | 7 -> Flush
  | 8 -> Compact
  | _ -> Reopen

let pp_op = function
  | Insert value -> "insert " ^ V.to_string value
  | Delete k -> Printf.sprintf "delete #%d" k
  | Flush -> "flush"
  | Compact -> "compact"
  | Reopen -> "reopen"

let arbitrary_script =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 5 40) gen_op)

(* The model: the assoc list of (gid, value) the store must expose.
   Delete k targets the k-th live record (mod size), exercising memtable,
   sealed, and already-deleted targets alike. *)
let apply_model model op =
  match op with
  | Delete k when model <> [] ->
    let n = List.length model in
    let gid, _ = List.nth model (k mod n) in
    List.filter (fun (g, _) -> g <> gid) model
  | _ -> model

let run_script dir ops =
  let config = { manual with L.flush_records = 6; wal_sync = false } in
  let store = ref (L.create ~config dir) in
  Fun.protect ~finally:(fun () -> L.close !store) @@ fun () ->
  let model = ref [] in
  List.iter
    (fun op ->
      (match op with
      | Insert value ->
        let gid = L.insert !store value in
        model := !model @ [ (gid, value) ]
      | Delete k ->
        (match !model with
        | [] -> ignore (L.delete !store 0)
        | l ->
          let gid, _ = List.nth l (k mod List.length l) in
          ignore (L.delete !store gid))
      | Flush -> ignore (L.flush !store)
      | Compact -> ignore (L.compact !store)
      | Reopen ->
        L.close !store;
        store := L.open_store ~config dir);
      model := apply_model !model op)
    ops;
  (* state equality: exactly the model's records, in gid order *)
  if live_pairs !store <> !model then
    QCheck.Test.fail_reportf "live records diverge from the model";
  (* query equality, all semantics, plus a couple of data-derived probes *)
  let data_probes =
    match !model with
    | (_, value) :: _ -> [ value ]
    | [] -> []
  in
  List.iter
    (fun q ->
      List.iter
        (fun (cname, config) ->
          let want = oracle_query ~config !store q in
          let got = L.query ~config !store q in
          if want <> got then
            QCheck.Test.fail_reportf "%s %s: oracle %s, live %s" cname
              (V.to_string q)
              (String.concat "," (List.map string_of_int want))
              (String.concat "," (List.map string_of_int got)))
        configs)
    (probes @ data_probes);
  check_bool "verify clean after script" true (L.verify !store = []);
  true

let test_differential =
  Testutil.qcheck_case ~count:60 ~name:"random interleavings match a rebuild"
    arbitrary_script
    (fun ops -> with_temp_dir @@ fun dir -> run_script dir ops)

(* --- crash sweep ---

   A scripted workload (inserts, deletes, auto-flushes, one compaction)
   runs behind a wrap hook that counts every mutating kv op across every
   handle the store opens — WAL, segment builds, compaction products —
   and can kill the store at any one of them (optionally tearing the
   final WAL record, which carries its own checksum precisely for this).
   After each crash: reopen, integrity-check, and hold the survivors to
   the acknowledged-ops model. *)

let crash_script =
  List.concat
    (List.mapi
       (fun i s -> [ `Insert s; `Insert (Printf.sprintf "{extra%d, a}" i) ])
       Testutil.licences_strings)
  @ [ `Delete 0; `Delete 5; `Compact; `Insert "{tail, z}"; `Delete 9 ]

type counter_wrap = {
  wrap : string -> Storage.Kv.t -> Storage.Kv.t;
  ops : int ref;
}

(* [limit = max_int] counts; otherwise the [limit]-th mutating op (and
   every later one) raises Fault.Crashed. In [torn] mode the crashing
   put of a WAL record reaches the backend with half its value first —
   the op-level CRC must catch it. *)
let make_crashy ?(torn = false) ~limit () =
  let ops = ref 0 in
  let dead = ref false in
  let wrap path (kv : Storage.Kv.t) =
    let bump ~tear =
      if !dead then raise (Storage.Fault.Crashed "sweep");
      incr ops;
      if !ops >= limit then begin
        dead := true;
        (match tear with Some f -> f () | None -> ());
        raise (Storage.Fault.Crashed "sweep")
      end
    in
    let is_wal = String.length (Filename.basename path) >= 4
                 && String.sub (Filename.basename path) 0 4 = "wal-" in
    {
      kv with
      Storage.Kv.put =
        (fun k value ->
          let tear =
            if torn && is_wal then
              Some (fun () -> kv.Storage.Kv.put k
                      (String.sub value 0 (String.length value / 2)))
            else None
          in
          bump ~tear;
          kv.Storage.Kv.put k value);
      delete = (fun k -> bump ~tear:None; kv.Storage.Kv.delete k);
      sync = (fun () -> bump ~tear:None; kv.Storage.Kv.sync ());
    }
  in
  { wrap; ops }

let crash_config wrap =
  { L.flush_records = 3; max_segments = 0; auto_compact = false;
    wal_sync = true; wrap }

(* Applies the script; returns the model states before and after the op
   that crashed (equal when nothing crashed). *)
let apply_crash_script store =
  let model = ref [] in
  let crashed_between = ref None in
  (try
     List.iter
       (fun op ->
         let before = !model in
         let after =
           match op with
           | `Insert s ->
             let value = v s in
             let gid = L.insert store value in
             before @ [ (gid, value) ]
           | `Delete gid ->
             ignore (L.delete store gid);
             List.filter (fun (g, _) -> g <> gid) before
           | `Compact ->
             ignore (L.compact ~all:true store);
             before
         in
         (* an op that returned is acknowledged *)
         model := after)
       crash_script
   with Storage.Fault.Crashed _ ->
     (* the in-flight op may or may not survive: recompute its would-be
        effect from the last acknowledged state *)
     let before = !model in
     let next_gid = match List.rev before with [] -> 0 | (g, _) :: _ -> g + 1 in
     crashed_between := Some (before, next_gid));
  (!model, !crashed_between)

let check_recovered ~ctx dir (acknowledged, crashed_between) =
  let store = L.open_store ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  (match L.verify store with
  | [] -> ()
  | (what, detail) :: _ ->
    Alcotest.failf "%s: recovered store fails verify: %s: %s" ctx what detail);
  let survivors = live_pairs store in
  let acceptable =
    survivors = acknowledged
    ||
    match crashed_between with
    | None -> false
    | Some (before, next_gid) ->
      (* in-flight insert made it down: acknowledged state plus one
         record with the next gid. In-flight delete made it down: some
         acknowledged record missing. Both are (before op, after op)
         states; anything else is corruption. *)
      survivors = before
      || (match List.rev survivors with
         | (g, _) :: _ when g = next_gid ->
           List.filter (fun (gid, _) -> gid <> g) survivors = before
         | _ -> false)
      || List.length survivors = List.length before - 1
         && List.for_all (fun r -> List.mem r before [@lint.allow polycmp]) survivors
  in
  if not acceptable then
    Alcotest.failf "%s: survivors match neither side of the crash boundary" ctx;
  (* and the survivors answer queries exactly like a rebuild *)
  assert_equiv ~ctx:(ctx ^ ": ") store

let test_crash_sweep_kv ~torn () =
  (* pass 1: count the write boundaries *)
  let total =
    with_temp_dir @@ fun dir ->
    let c = make_crashy ~limit:max_int () in
    let store = L.create ~config:(crash_config c.wrap) dir in
    let model, _ = apply_crash_script store in
    check_bool "fault-free run keeps every record" true
      (live_pairs store = model);
    L.close store;
    !(c.ops)
  in
  check_bool "workload produces write boundaries" true (total > 20);
  (* pass 2: crash at each boundary in turn *)
  for boundary = 1 to total do
    with_temp_dir @@ fun dir ->
    let c = make_crashy ~torn ~limit:boundary () in
    let outcome =
      let store = L.create ~config:(crash_config c.wrap) dir in
      let outcome = apply_crash_script store in
      (try L.close store with Storage.Fault.Crashed _ -> ());
      outcome
    in
    check_recovered ~ctx:(Printf.sprintf "boundary %d" boundary) dir outcome
  done

(* Crash exactly at the named steps inside flush and compaction — the
   points bracketing the manifest swap. *)
let test_crash_at_steps () =
  let steps =
    [
      "flush:segment-built"; "flush:wal-rotated"; "flush:manifest-swapped";
      "compact:dst-built"; "compact:manifest-swapped";
    ]
  in
  List.iter
    (fun step ->
      with_temp_dir @@ fun dir ->
      let outcome =
        let store = L.create ~config:(crash_config (fun _ kv -> kv)) dir in
        Live.Live_store.set_step_hook store (fun s ->
            if String.equal s step then
              raise (Storage.Fault.Crashed ("step " ^ step)));
        let outcome = apply_crash_script store in
        (try L.close store with Storage.Fault.Crashed _ -> ());
        outcome
      in
      let acknowledged, crashed = outcome in
      check_bool (step ^ " fired") true (crashed <> None || acknowledged = []);
      check_recovered ~ctx:step dir outcome)
    steps

(* A flush or compaction interrupted before its manifest swap leaves
   orphan files; reopening must clean them and reuse the sequence
   numbers without a clash. *)
let test_orphan_cleanup () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:manual dir in
  List.iter (fun value -> ignore (L.insert store value)) licences;
  L.set_step_hook store (fun s ->
      if String.equal s "flush:wal-rotated" then
        raise (Storage.Fault.Crashed "orphan test"));
  (try ignore (L.flush store) with Storage.Fault.Crashed _ -> ());
  (try L.close store with Storage.Fault.Crashed _ -> ());
  (* the sealed-but-uncommitted segment and the rotated WAL are on disk *)
  let files () =
    List.sort String.compare (Array.to_list (Sys.readdir dir))
  in
  check_bool "orphans present before reopen" true
    (List.length (files ()) > 2);
  let store = L.open_store ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  check_ids "orphan segment not resurrected: records replay from the WAL"
    [ 0; 1; 2; 3 ]
    (List.map fst (live_pairs store));
  check_int "no sealed segments" 0 (L.segment_count store);
  ignore (L.flush store);
  assert_equiv ~ctx:"after orphan cleanup: " store

let () =
  Alcotest.run "live"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "basic insert/delete/query" `Quick test_basic;
          Alcotest.test_case "flush and compact" `Quick test_flush_and_compact;
          Alcotest.test_case "reopen replays the WAL" `Quick
            test_reopen_replays_wal;
          Alcotest.test_case "auto flush" `Quick test_auto_flush;
          Alcotest.test_case "background compaction" `Slow test_auto_compact;
          Alcotest.test_case "join matches the rebuild oracle" `Quick
            test_join_matches_naive;
          Alcotest.test_case "query_batch" `Quick test_query_batch;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "verify/repair on a healthy store" `Quick
            test_verify_healthy;
        ] );
      ("differential", [ test_differential ]);
      ( "crash",
        [
          Alcotest.test_case "sweep every kv write boundary" `Slow
            (test_crash_sweep_kv ~torn:false);
          Alcotest.test_case "sweep with torn WAL records" `Slow
            (test_crash_sweep_kv ~torn:true);
          Alcotest.test_case "crash at every named step" `Quick
            test_crash_at_steps;
          Alcotest.test_case "orphan cleanup on reopen" `Quick
            test_orphan_cleanup;
        ] );
    ]
