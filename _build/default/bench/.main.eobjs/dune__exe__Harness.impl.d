bench/harness.ml: Buffer Char Containment Datagen Filename Float Fun Invfile List Nested Printf Seq Storage String Sys Unix
