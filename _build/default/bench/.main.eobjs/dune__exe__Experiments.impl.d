bench/experiments.ml: Containment Datagen Float Fun Harness Invfile List Nested Printf Random Seq Storage String
