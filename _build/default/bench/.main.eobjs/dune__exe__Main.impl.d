bench/main.ml: Analyze Arg Bechamel Benchmark Cmd Cmdliner Containment Datagen Experiments Float Harness Hashtbl Invfile List Measure Nested Printf Random Staged String Term Test Time Toolkit
