bench/main.mli:
