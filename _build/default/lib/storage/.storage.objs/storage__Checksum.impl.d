lib/storage/checksum.ml: Array Bytes Char Int32 Lazy String
