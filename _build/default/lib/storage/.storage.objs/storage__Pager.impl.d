lib/storage/pager.ml: Bytes Hashtbl Io_stats Printf Queue String Unix
