lib/storage/btree_store.mli: Kv
