lib/storage/codec.ml: Array Buffer Char List String
