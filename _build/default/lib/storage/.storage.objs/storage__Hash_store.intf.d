lib/storage/hash_store.mli: Kv
