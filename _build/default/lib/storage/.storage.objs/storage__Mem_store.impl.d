lib/storage/mem_store.ml: Hashtbl Io_stats Kv String
