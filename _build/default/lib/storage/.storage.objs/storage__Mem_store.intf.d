lib/storage/mem_store.mli: Kv
