lib/storage/pager.mli: Io_stats
