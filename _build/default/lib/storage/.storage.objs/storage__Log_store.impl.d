lib/storage/log_store.ml: Bytes Checksum Hashtbl Int32 Io_stats Kv List Option Printf String Unix
