lib/storage/codec.mli:
