lib/storage/hash_store.ml: Bytes Char Hashtbl Int32 Int64 Io_stats Kv Printf String Unix
