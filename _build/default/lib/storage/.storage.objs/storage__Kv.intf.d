lib/storage/kv.mli: Io_stats
