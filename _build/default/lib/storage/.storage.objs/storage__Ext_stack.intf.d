lib/storage/ext_stack.mli: Io_stats
