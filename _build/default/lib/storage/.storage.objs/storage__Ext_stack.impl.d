lib/storage/ext_stack.ml: Bytes Int32 Io_stats List Stack String Sys Unix
