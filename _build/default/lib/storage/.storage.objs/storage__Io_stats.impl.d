lib/storage/io_stats.ml: Format
