lib/storage/kv.ml: Io_stats List Option String
