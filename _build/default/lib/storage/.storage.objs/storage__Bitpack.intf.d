lib/storage/bitpack.mli:
