lib/storage/io_stats.mli: Format
