lib/storage/checksum.mli:
