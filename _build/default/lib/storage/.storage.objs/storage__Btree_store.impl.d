lib/storage/btree_store.ml: Array Bytes Codec Hashtbl Int64 Io_stats Kv List Option Pager String
