lib/storage/log_store.mli: Kv
