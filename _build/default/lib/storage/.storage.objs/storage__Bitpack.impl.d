lib/storage/bitpack.ml: Array Buffer Char Codec String
