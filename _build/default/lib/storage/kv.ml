type t = {
  name : string;
  get : string -> string option;
  put : string -> string -> unit;
  delete : string -> bool;
  iter : (string -> string -> unit) -> unit;
  length : unit -> int;
  sync : unit -> unit;
  close : unit -> unit;
  stats : Io_stats.t;
}

let mem t k = Option.is_some (t.get k)

let find_exn t k =
  match t.get k with
  | Some v -> v
  | None -> raise Not_found

let update t k f = t.put k (f (t.get k))

let keys t =
  let acc = ref [] in
  t.iter (fun k _ -> acc := k :: !acc);
  List.sort String.compare !acc

let to_alist t =
  let acc = ref [] in
  t.iter (fun k v -> acc := (k, v) :: !acc);
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc
