let block_size = 128

(* Layout: varint count, then per block: width byte (0..63), then
   ceil(width * items_in_block / 8) bytes of little-endian packed bits.
   A width of 0 encodes a block of zeros with no payload. *)

let bits_needed v =
  let rec go b = if v lsr b = 0 then b else go (b + 1) in
  go 0

let block_width a lo hi =
  let w = ref 0 in
  for i = lo to hi - 1 do
    w := max !w (bits_needed a.(i))
  done;
  !w

let max_width = 54 (* keeps shift accumulators within OCaml's 63-bit ints *)

let pack a =
  Array.iter
    (fun v ->
      if v < 0 then invalid_arg "Bitpack.pack: negative value";
      if bits_needed v > max_width then invalid_arg "Bitpack.pack: value too large")
    a;
  let buf = Codec.writer () in
  Codec.write_varint buf (Array.length a);
  let out = Buffer.create 64 in
  Buffer.add_string out (Codec.contents buf);
  let n = Array.length a in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + block_size) in
    let width = block_width a !lo hi in
    Buffer.add_char out (Char.chr width);
    if width > 0 then begin
      (* accumulate bits little-endian *)
      let acc = ref 0 and acc_bits = ref 0 in
      for i = !lo to hi - 1 do
        acc := !acc lor (a.(i) lsl !acc_bits);
        acc_bits := !acc_bits + width;
        while !acc_bits >= 8 do
          Buffer.add_char out (Char.chr (!acc land 0xff));
          acc := !acc lsr 8;
          acc_bits := !acc_bits - 8
        done;
      done;
      if !acc_bits > 0 then Buffer.add_char out (Char.chr (!acc land 0xff))
    end;
    lo := hi
  done;
  Buffer.contents out

exception Corrupt = Codec.Corrupt

let unpack s =
  let r = Codec.reader s in
  let n = Codec.read_varint r in
  let a = Array.make (max n 1) 0 in
  let pos = ref 0 in
  (* switch to manual byte access after the varint header *)
  let byte_at =
    let header_len =
      (* re-measure the varint length *)
      let w = Codec.writer () in
      Codec.write_varint w n;
      String.length (Codec.contents w)
    in
    pos := header_len;
    fun i ->
      if i >= String.length s then raise (Corrupt "Bitpack.unpack: truncated");
      Char.code s.[i]
  in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + block_size) in
    let width = byte_at !pos in
    incr pos;
    if width > max_width then raise (Corrupt "Bitpack.unpack: bad width");
    if width = 0 then
      for i = !lo to hi - 1 do
        a.(i) <- 0
      done
    else begin
      let acc = ref 0 and acc_bits = ref 0 in
      for i = !lo to hi - 1 do
        while !acc_bits < width do
          acc := !acc lor (byte_at !pos lsl !acc_bits);
          incr pos;
          acc_bits := !acc_bits + 8
        done;
        a.(i) <- !acc land ((1 lsl width) - 1);
        acc := !acc lsr width;
        acc_bits := !acc_bits - width
      done
    end;
    lo := hi
  done;
  if n = 0 then [||] else a

let packed_size a =
  let header =
    let w = Codec.writer () in
    Codec.write_varint w (Array.length a);
    String.length (Codec.contents w)
  in
  let n = Array.length a in
  let total = ref header in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + block_size) in
    let width = block_width a !lo hi in
    total := !total + 1 + ((width * (hi - !lo) + 7) / 8);
    lo := hi
  done;
  !total
