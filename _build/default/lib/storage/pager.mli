(** Paged file I/O.

    Fixed-size pages over a Unix file descriptor, with access counters and
    an optional user-space page cache (disabled by default, matching the
    paper's "no main memory buffering" setting). Page 0 is conventionally a
    metadata page owned by the client. *)

type t

val create : ?page_size:int -> ?cache_pages:int -> string -> t
(** Creates (truncating) a paged file. [page_size] defaults to 4096 bytes;
    [cache_pages] to [0] (no caching). *)

val open_existing : ?page_size:int -> ?cache_pages:int -> string -> t
(** Opens an existing paged file. The file size must be a multiple of
    [page_size]. @raise Failure otherwise. *)

val page_size : t -> int
val page_count : t -> int

val read_page : t -> int -> bytes
(** Returns a fresh (or cached) buffer of [page_size] bytes.
    @raise Invalid_argument if the page does not exist. *)

val write_page : t -> int -> bytes -> unit
(** The buffer must be exactly [page_size] bytes; pages beyond the current
    end extend the file (intermediate pages are zero-filled). *)

val append_page : t -> bytes -> int
(** Writes a new page at the end of the file and returns its number. *)

val append_blob : t -> string -> int
(** [append_blob t s] stores [s] across [ceil (len/page_size)] fresh
    contiguous pages and returns the first page number. *)

val read_blob : t -> first_page:int -> len:int -> string

val stats : t -> Io_stats.t
val sync : t -> unit
val close : t -> unit
