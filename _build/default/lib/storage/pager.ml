type t = {
  fd : Unix.file_descr;
  page_size : int;
  mutable pages : int;
  stats : Io_stats.t;
  cache : (int, bytes) Hashtbl.t option;
  cache_order : int Queue.t;
  cache_capacity : int;
  mutable closed : bool;
}

let page_size t = t.page_size
let page_count t = t.pages
let stats t = t.stats

let check_open t = if t.closed then failwith "Pager: file is closed"

let really_pread t ~off buf len =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec loop pos len =
    if len > 0 then begin
      let n = Unix.read t.fd buf pos len in
      if n = 0 then Bytes.fill buf pos len '\000' (* sparse tail *)
      else loop (pos + n) (len - n)
    end
  in
  loop 0 len;
  Io_stats.record_read t.stats ~bytes:len

let really_pwrite t ~off buf len =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec loop pos len =
    if len > 0 then begin
      let n = Unix.write t.fd buf pos len in
      loop (pos + n) (len - n)
    end
  in
  loop 0 len;
  Io_stats.record_write t.stats ~bytes:len

(* Second-chance (clock-ish) bounded cache: on overflow, evict the oldest
   inserted page. The insertion queue carries page numbers; stale queue
   entries (already evicted/overwritten) are skipped. *)
let cache_insert t page buf =
  match t.cache with
  | None -> ()
  | Some c ->
    if not (Hashtbl.mem c page) then begin
      Queue.push page t.cache_order;
      while Hashtbl.length c >= t.cache_capacity do
        match Queue.take_opt t.cache_order with
        | Some victim -> Hashtbl.remove c victim
        | None -> Hashtbl.reset c
      done
    end;
    Hashtbl.replace c page (Bytes.copy buf)

let read_page t page =
  check_open t;
  if page < 0 || page >= t.pages then
    invalid_arg (Printf.sprintf "Pager.read_page: page %d of %d" page t.pages);
  match t.cache with
  | Some c when Hashtbl.mem c page ->
    Io_stats.record_hit t.stats;
    Bytes.copy (Hashtbl.find c page)
  | _ ->
    Io_stats.record_miss t.stats;
    let buf = Bytes.create t.page_size in
    really_pread t ~off:(page * t.page_size) buf t.page_size;
    cache_insert t page buf;
    buf

let write_page t page buf =
  check_open t;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Pager.write_page: buffer size mismatch";
  if page < 0 then invalid_arg "Pager.write_page: negative page";
  really_pwrite t ~off:(page * t.page_size) buf t.page_size;
  if page >= t.pages then t.pages <- page + 1;
  cache_insert t page buf

let append_page t buf =
  let page = t.pages in
  write_page t page buf;
  page

let append_blob t s =
  check_open t;
  let len = String.length s in
  let n_pages = max 1 ((len + t.page_size - 1) / t.page_size) in
  let first = t.pages in
  let buf = Bytes.make (n_pages * t.page_size) '\000' in
  Bytes.blit_string s 0 buf 0 len;
  really_pwrite t ~off:(first * t.page_size) buf (Bytes.length buf);
  t.pages <- first + n_pages;
  first

let read_blob t ~first_page ~len =
  check_open t;
  if len = 0 then ""
  else begin
    let n_pages = (len + t.page_size - 1) / t.page_size in
    if first_page < 0 || first_page + n_pages > t.pages then
      invalid_arg "Pager.read_blob: out of bounds";
    let buf = Bytes.create (n_pages * t.page_size) in
    really_pread t ~off:(first_page * t.page_size) buf (Bytes.length buf);
    Bytes.sub_string buf 0 len
  end

let sync t =
  check_open t;
  Unix.fsync t.fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

let make fd ~page_size ~cache_pages ~pages =
  {
    fd;
    page_size;
    pages;
    stats = Io_stats.create ();
    cache = (if cache_pages > 0 then Some (Hashtbl.create cache_pages) else None);
    cache_order = Queue.create ();
    cache_capacity = cache_pages;
    closed = false;
  }

let create ?(page_size = 4096) ?(cache_pages = 0) path =
  if page_size < 64 then invalid_arg "Pager.create: page size too small";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  make fd ~page_size ~cache_pages ~pages:0

let open_existing ?(page_size = 4096) ?(cache_pages = 0) path =
  let fd =
    try Unix.openfile path [ Unix.O_RDWR ] 0o644
    with Unix.Unix_error (e, _, _) ->
      failwith (Printf.sprintf "Pager.open_existing %s: %s" path (Unix.error_message e))
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod page_size <> 0 then
    failwith "Pager.open_existing: file size is not a multiple of the page size";
  make fd ~page_size ~cache_pages ~pages:(size / page_size)
