let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc byte =
  let t = Lazy.force table in
  Int32.logxor
    t.(Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xFFl))
    (Int32.shift_right_logical crc 8)

let crc32_bytes ?(init = 0l) b ~pos ~len =
  let crc = ref (Int32.lognot init) in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.get b i))
  done;
  Int32.lognot !crc

let crc32_sub ?init s ~pos ~len =
  crc32_bytes ?init (Bytes.unsafe_of_string s) ~pos ~len

let crc32 ?init s = crc32_sub ?init s ~pos:0 ~len:(String.length s)
