(** Key-value store handles.

    A common interface over the storage backends (in-memory hash table,
    on-disk hash table, on-disk B+tree), mirroring the role Tokyo Cabinet
    plays in the paper's implementation (Sec. 5.1). The inverted file and
    the record store are built against this interface so every experiment
    can be run against any backend. *)

type t = {
  name : string;  (** backend description, e.g. ["hash:path"] *)
  get : string -> string option;
  put : string -> string -> unit;  (** inserts or replaces *)
  delete : string -> bool;  (** [true] if the key was present *)
  iter : (string -> string -> unit) -> unit;  (** arbitrary order *)
  length : unit -> int;  (** number of live keys *)
  sync : unit -> unit;
  close : unit -> unit;
  stats : Io_stats.t;
}

val mem : t -> string -> bool
val find_exn : t -> string -> string
(** @raise Not_found if the key is absent. *)

val update : t -> string -> (string option -> string) -> unit
(** [update t k f] replaces the binding of [k] with [f (get t k)]. *)

val keys : t -> string list
(** All keys, sorted. *)

val to_alist : t -> (string * string) list
(** All bindings, sorted by key. *)
