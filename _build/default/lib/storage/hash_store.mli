(** On-disk external hash table.

    Stands in for Tokyo Cabinet's external-memory hash table, the storage
    engine of the paper's implementation (Sec. 5.1, with main-memory
    buffering explicitly disabled). Every [get] performs real file I/O —
    there is no user-space page cache — so the inverted-list caching
    optimization of Sec. 3.3 has a genuine effect to measure.

    File layout:
    - a fixed header (magic, version, bucket count, live-record count),
    - a bucket directory of [buckets] 8-byte chain heads,
    - an append-only record heap; each record is
      [next(8) | key_len(4) | val_len(4) | key | value].

    Replacement unlinks the stale record from its chain and appends the new
    one; dead space is not reclaimed (compaction is out of scope — Tokyo
    Cabinet behaves the same until [optimize] is called). The bucket count
    is fixed at creation time. *)

val create : ?buckets:int -> string -> Kv.t
(** [create path] creates a fresh store at [path], truncating any existing
    file. [buckets] defaults to [65536] and is rounded up to a power of
    two. *)

val open_existing : string -> Kv.t
(** Reopens a store created by {!create}.
    @raise Failure if the file is missing or malformed. *)

val optimize : Kv.t -> unit
(** Rewrites the file with only the live records (the counterpart of Tokyo
    Cabinet's [optimize]): replacement and deletion leave dead heap records
    behind, which this reclaims via an atomic rename. Only valid on handles
    from this module. @raise Invalid_argument on foreign handles. *)

val file_size : Kv.t -> int
(** Current size of the backing file in bytes.
    @raise Invalid_argument on foreign handles. *)
