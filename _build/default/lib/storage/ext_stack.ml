(* Layout: the backing file is a sequence of records [len(4) | bytes],
   oldest (deepest) first; [frames] records each spilled record's offset so
   pops can seek back. The in-memory buffer holds the newest entries. *)

type t = {
  fd : Unix.file_descr;
  path : string;
  buffer : string Stack.t;  (* top of the logical stack *)
  buffer_items : int;
  mutable frames : (int * int) list;  (* (offset, len) of spilled, newest first *)
  mutable file_end : int;
  stats : Io_stats.t;
  mutable closed : bool;
}

let create ?(buffer_items = 1024) path =
  if buffer_items < 1 then invalid_arg "Ext_stack.create: buffer_items must be ≥ 1";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  {
    fd;
    path;
    buffer = Stack.create ();
    buffer_items;
    frames = [];
    file_end = 0;
    stats = Io_stats.create ();
    closed = false;
  }

let check_open t = if t.closed then failwith "Ext_stack: closed"

let length t = Stack.length t.buffer + List.length t.frames
let is_empty t = length t = 0
let spilled_items t = List.length t.frames
let stats t = t.stats

let write_at t ~off buf =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec loop pos remaining =
    if remaining > 0 then begin
      let n = Unix.write t.fd buf pos remaining in
      loop (pos + n) (remaining - n)
    end
  in
  loop 0 len;
  Io_stats.record_write t.stats ~bytes:len

let read_at t ~off len =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let buf = Bytes.create len in
  let rec loop pos remaining =
    if remaining > 0 then begin
      let n = Unix.read t.fd buf pos remaining in
      if n = 0 then failwith "Ext_stack: truncated file";
      loop (pos + n) (remaining - n)
    end
  in
  loop 0 len;
  Io_stats.record_read t.stats ~bytes:len;
  Bytes.unsafe_to_string buf

(* Spills the *bottom* half of the buffer to disk, keeping the newest
   entries in memory. *)
let spill t =
  let items = ref [] in
  Stack.iter (fun s -> items := s :: !items) t.buffer;
  (* !items is now oldest-first *)
  let oldest_first = !items in
  let keep = t.buffer_items / 2 in
  let to_spill_count = Stack.length t.buffer - keep in
  let rec split i acc = function
    | rest when i = to_spill_count -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (i + 1) (x :: acc) rest
  in
  let spill_list, keep_list = split 0 [] oldest_first in
  List.iter
    (fun s ->
      let len = String.length s in
      let buf = Bytes.create (4 + len) in
      Bytes.set_int32_le buf 0 (Int32.of_int len);
      Bytes.blit_string s 0 buf 4 len;
      write_at t ~off:t.file_end buf;
      t.frames <- (t.file_end + 4, len) :: t.frames;
      t.file_end <- t.file_end + 4 + len)
    spill_list;
  Stack.clear t.buffer;
  List.iter (fun s -> Stack.push s t.buffer) keep_list

(* Refills the buffer with the newest spilled entries when memory drains. *)
let refill t =
  let count = min (max 1 (t.buffer_items / 2)) (List.length t.frames) in
  let rec take i acc frames =
    if i = count then (List.rev acc, frames)
    else
      match frames with
      | [] -> (List.rev acc, [])
      | f :: rest -> take (i + 1) (f :: acc) rest
  in
  let newest, rest = take 0 [] t.frames in
  t.frames <- rest;
  (* newest is newest-first; push oldest of them first *)
  List.iter
    (fun (off, len) -> Stack.push (read_at t ~off len) t.buffer)
    (List.rev newest);
  (* reclaim the file tail when everything spilled has been consumed *)
  if t.frames = [] then begin
    Unix.ftruncate t.fd 0;
    t.file_end <- 0
  end

let push t s =
  check_open t;
  if Stack.length t.buffer >= t.buffer_items then spill t;
  Stack.push s t.buffer

let pop t =
  check_open t;
  if Stack.is_empty t.buffer && t.frames <> [] then refill t;
  match Stack.pop_opt t.buffer with
  | Some s -> Some s
  | None -> None

let top t =
  check_open t;
  if Stack.is_empty t.buffer && t.frames <> [] then refill t;
  Stack.top_opt t.buffer

let clear t =
  check_open t;
  Stack.clear t.buffer;
  t.frames <- [];
  Unix.ftruncate t.fd 0;
  t.file_end <- 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd;
    try Sys.remove t.path with Sys_error _ -> ()
  end
