(** Block-wise bit packing of non-negative integer sequences.

    The classic inverted-file compression alternative to byte-aligned
    varints: values are packed in blocks of 128 using the per-block maximum
    bit width. Callers delta-encode sorted sequences first (gaps pack into
    few bits); this module packs the values it is given verbatim.

    Used by {!Invfile.Plist} as the [`Bitpacked] postings codec — the
    compression ablation of the benchmark suite. *)

val block_size : int
(** 128. *)

val pack : int array -> string
(** @raise Invalid_argument on negative values. *)

val unpack : string -> int array
(** @raise Storage.Codec.Corrupt on malformed input. *)

val packed_size : int array -> int
(** Size in bytes [pack] would produce, without producing it. *)
