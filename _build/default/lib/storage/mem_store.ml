let create ?(initial_size = 1024) () =
  let table : (string, string) Hashtbl.t = Hashtbl.create initial_size in
  let stats = Io_stats.create () in
  let get k =
    match Hashtbl.find_opt table k with
    | Some v as r ->
      Io_stats.record_read stats ~bytes:(String.length v);
      r
    | None -> None
  in
  let put k v =
    Io_stats.record_write stats ~bytes:(String.length k + String.length v);
    Hashtbl.replace table k v
  in
  let delete k =
    let present = Hashtbl.mem table k in
    if present then Hashtbl.remove table k;
    present
  in
  {
    Kv.name = "mem";
    get;
    put;
    delete;
    iter = (fun f -> Hashtbl.iter f table);
    length = (fun () -> Hashtbl.length table);
    sync = (fun () -> ());
    close = (fun () -> Hashtbl.reset table);
    stats;
  }
