(** CRC-32 (IEEE 802.3, reflected) checksums, for torn-write detection in
    the log-structured store. *)

val crc32 : ?init:int32 -> string -> int32
val crc32_sub : ?init:int32 -> string -> pos:int -> len:int -> int32
val crc32_bytes : ?init:int32 -> bytes -> pos:int -> len:int -> int32
