(** In-memory key-value store backed by a hash table.

    Used for small collections, unit tests, and as the fully-buffered
    extreme in the caching experiments. Access counters still run so the
    backends are comparable. *)

val create : ?initial_size:int -> unit -> Kv.t
