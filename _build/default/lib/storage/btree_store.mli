(** On-disk B+tree key-value store.

    The second index structure offered by Tokyo Cabinet (Sec. 5.1). Keys are
    kept in sorted order in leaf pages chained left-to-right, so iteration
    and range scans are ordered — which the hash store cannot offer. Values
    larger than a quarter page go to overflow pages.

    Deletion is lazy (entries are removed from leaves without rebalancing)
    and replaced overflow values are not reclaimed; both match the
    build-once / read-mostly usage of an inverted file and are documented
    limitations. *)

val create : ?page_size:int -> ?cache_pages:int -> string -> Kv.t
(** Creates a fresh store (truncating [path]). Keys are limited to
    [page_size/16] bytes. [iter] visits keys in ascending order. *)

val open_existing : ?page_size:int -> ?cache_pages:int -> string -> Kv.t
(** Reopens a store created with the same [page_size].
    @raise Failure if the file is missing or malformed. *)

val range : Kv.t -> lo:string -> hi:string -> (string * string) list
(** [range kv ~lo ~hi] returns the bindings with [lo <= key < hi] in
    ascending key order. Only valid on handles produced by this module.
    @raise Invalid_argument on foreign handles. *)
