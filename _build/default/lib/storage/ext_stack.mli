(** External-memory stack.

    The paper's bottom-up algorithm assumes its stack fits in main memory
    and points to STXXL's external stacks to lift the assumption (Sec. 5.1,
    "Other assumptions", (2)). This is that structure: a stack of byte
    strings that keeps only the top [buffer_items] entries in memory and
    spills the rest to an append-only file, refilling the buffer from disk
    as the in-memory part drains.

    Spilled bytes are reclaimed when the file tail becomes garbage
    (truncation on {!clear} and when the stack empties). *)

type t

val create : ?buffer_items:int -> string -> t
(** [create path] opens a fresh external stack backed by [path]
    (truncated). [buffer_items] (default 1024) bounds the in-memory top. *)

val push : t -> string -> unit
val pop : t -> string option
val top : t -> string option
val length : t -> int
val is_empty : t -> bool
val clear : t -> unit

val spilled_items : t -> int
(** Entries currently residing on disk (for tests and stats). *)

val stats : t -> Io_stats.t
val close : t -> unit
(** Closes and removes the backing file. *)
