type policy = Static | Lru | Lfu

(* Lru uses an intrusive doubly-linked recency list (O(1) touch/evict);
   Lfu evicts in amortized batches (scanning is O(n), so a tenth of the
   capacity is dropped per scan); Static never changes after preloading. *)

type node = {
  key : string;
  list : Plist.t;
  mutable uses : int;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type t = {
  pol : policy;
  cap : int;
  table : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
}

let create pol ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  { pol; cap = capacity; table = Hashtbl.create (max 16 capacity); mru = None; lru = None }

let policy t = t.pol
let capacity t = t.cap
let size t = Hashtbl.length t.table

(* --- recency list maintenance (only exercised under Lru) --- *)

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.mru <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some n | None -> ());
  t.mru <- Some n;
  if t.lru = None then t.lru <- Some n

let touch t n =
  match t.pol, t.mru with
  | Lru, Some m when m == n -> ()
  | Lru, _ ->
    unlink t n;
    push_front t n
  | (Static | Lfu), _ -> ()

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
    n.uses <- n.uses + 1;
    touch t n;
    Some n.list

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
    if t.pol = Lru then unlink t n;
    Hashtbl.remove t.table key

let evict t =
  match t.pol with
  | Static -> ()
  | Lru -> (
    match t.lru with
    | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key
    | None -> ())
  | Lfu ->
    (* batch-evict the ~10% least used to amortize the scan *)
    let batch = max 1 (t.cap / 10) in
    let nodes = Hashtbl.fold (fun _ n acc -> n :: acc) t.table [] in
    let by_uses = List.sort (fun a b -> Int.compare a.uses b.uses) nodes in
    List.iteri (fun i n -> if i < batch then Hashtbl.remove t.table n.key) by_uses

let add_entry t key list =
  let n = { key; list; uses = 1; prev = None; next = None } in
  Hashtbl.replace t.table key n;
  if t.pol = Lru then push_front t n

let insert t key list =
  if t.cap > 0 && not (Hashtbl.mem t.table key) then
    match t.pol with
    | Static -> if size t < t.cap then add_entry t key list
    | Lru | Lfu ->
      if size t >= t.cap then evict t;
      add_entry t key list

let preload t entries =
  List.iter (fun (key, list) -> if size t < t.cap then add_entry t key list) entries

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let cached_atoms t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort String.compare
