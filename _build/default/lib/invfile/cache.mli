(** Main-memory inverted-list caches (paper, Sec. 3.3).

    The paper's optimization buffers the inverted lists of the most frequent
    values of [S], subject to a budget counted in {e lists} (250 in all of
    the paper's experiments). Three policies are provided:

    - {!static}: the paper's setting — the top-[capacity] most frequent
      atoms are preloaded and the contents never change;
    - {!lru}: evict the least recently used list;
    - {!lfu}: evict the least frequently used list (dynamic counts).

    The dynamic policies implement the paper's "caching with respect to an
    evolving query workload" future-work variant (Sec. 6). *)

type t

type policy = Static | Lru | Lfu

val create : policy -> capacity:int -> t
(** [capacity] is the maximum number of cached lists; [0] caches nothing. *)

val policy : t -> policy
val capacity : t -> int
val size : t -> int

val find : t -> string -> Plist.t option
(** Updates recency/frequency bookkeeping on hit. *)

val insert : t -> string -> Plist.t -> unit
(** For [Static] this is a no-op unless the cache is below capacity (i.e.
    inserts are only honoured during preloading); for [Lru]/[Lfu] it may
    evict. *)

val preload : t -> (string * Plist.t) list -> unit
(** Fills the cache (up to capacity) regardless of policy. *)

val remove : t -> string -> unit
(** Drops one entry if cached (needed when its inverted list changes). *)

val clear : t -> unit
val cached_atoms : t -> string list
(** Sorted. *)
