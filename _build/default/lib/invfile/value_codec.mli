(** Binary record encoding with dictionary-coded atoms.

    Stored record values default to the human-readable literal syntax; this
    codec provides the compact alternative: a pre-order traversal where
    each set writes its leaf atom {e ids} (via {!Dict}) and its children.
    Collections whose atoms repeat across records (every realistic one)
    shrink several-fold; see the benchmark suite's record-format ablation.

    Payloads are tagged so the two formats coexist: ['S'] syntax, ['B']
    binary. {!decode} dispatches on the tag, so readers handle either. *)

val encode : Dict.t -> Nested.Value.t -> string
(** Binary ('B') encoding, interning atoms as needed.
    @raise Invalid_argument on an atom value. *)

val encode_syntax : Nested.Value.t -> string
(** Tagged ('S') literal-syntax encoding. *)

val decode : Dict.t -> string -> Nested.Value.t
(** Decodes either format.
    @raise Storage.Codec.Corrupt on malformed payloads (including unknown
    tags and dangling dictionary ids). *)
