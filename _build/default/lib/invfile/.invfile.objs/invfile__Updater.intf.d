lib/invfile/updater.mli: Inverted_file Nested
