lib/invfile/plist.ml: Array Char Format Int List Option Posting Storage String
