lib/invfile/merger.ml: Array Inverted_file List Plist Posting Storage String
