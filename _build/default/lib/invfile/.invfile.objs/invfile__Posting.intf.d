lib/invfile/posting.mli: Format Nested Storage
