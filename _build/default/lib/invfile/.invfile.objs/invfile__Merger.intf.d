lib/invfile/merger.mli: Inverted_file
