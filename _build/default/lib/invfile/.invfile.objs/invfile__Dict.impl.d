lib/invfile/dict.ml: Hashtbl Storage
