lib/invfile/posting.ml: Array Format Int List Nested Storage String
