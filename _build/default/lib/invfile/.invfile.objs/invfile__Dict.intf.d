lib/invfile/dict.mli: Storage
