lib/invfile/updater.ml: Array Inverted_file List Nested Plist Posting Storage
