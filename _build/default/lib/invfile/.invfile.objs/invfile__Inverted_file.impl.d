lib/invfile/inverted_file.ml: Array Cache Dict List Nested Plist Printf Storage String Value_codec
