lib/invfile/value_codec.mli: Dict Nested
