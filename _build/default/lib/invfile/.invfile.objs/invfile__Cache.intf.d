lib/invfile/cache.mli: Plist
