lib/invfile/cache.ml: Hashtbl Int List Plist String
