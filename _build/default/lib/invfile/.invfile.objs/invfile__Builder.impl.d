lib/invfile/builder.ml: Array Dict Hashtbl Int Inverted_file List Nested Option Plist Posting Storage String Value_codec
