lib/invfile/integrity.mli: Format Inverted_file
