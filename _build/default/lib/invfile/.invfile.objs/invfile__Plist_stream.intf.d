lib/invfile/plist_stream.mli: Plist Posting
