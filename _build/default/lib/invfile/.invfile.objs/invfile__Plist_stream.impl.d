lib/invfile/plist_stream.ml: Array Char List Plist Posting Storage
