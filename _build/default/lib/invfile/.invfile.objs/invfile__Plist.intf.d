lib/invfile/plist.mli: Format Posting Storage
