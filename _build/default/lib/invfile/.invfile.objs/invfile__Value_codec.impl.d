lib/invfile/value_codec.ml: Dict List Nested Printf Storage String
