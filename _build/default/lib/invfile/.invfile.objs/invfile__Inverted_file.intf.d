lib/invfile/inverted_file.mli: Cache Dict Nested Plist Storage
