lib/invfile/stats.mli: Format Inverted_file
