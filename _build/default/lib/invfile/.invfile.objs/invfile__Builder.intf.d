lib/invfile/builder.mli: Inverted_file Nested Plist Storage
