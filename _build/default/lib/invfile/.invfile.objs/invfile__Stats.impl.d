lib/invfile/stats.ml: Float Format Hashtbl Int Inverted_file List Nested Option Plist Storage String
