lib/invfile/integrity.ml: Array Format Hashtbl Inverted_file List Nested Option Plist Posting Printf Storage String
