type cursor = {
  reader : Storage.Codec.reader option;  (* None for in-memory plists *)
  mutable mem : Plist.t;  (* backing array when reader = None *)
  mutable mem_pos : int;
  mutable remaining : int;
  mutable prev_node : int;
  mutable lookahead : Posting.t option;
}

let cursor_of_bytes payload =
  (match Plist.codec_of_bytes payload with
  | Plist.Varint -> ()
  | Plist.Bitpacked ->
    invalid_arg "Plist_stream.cursor_of_bytes: bitpacked payloads are not streamable");
  let reader = Storage.Codec.reader payload in
  let tag = Storage.Codec.read_varint reader in
  assert (tag = Char.code 'V');
  let remaining = Storage.Codec.read_varint reader in
  {
    reader = Some reader;
    mem = Plist.empty;
    mem_pos = 0;
    remaining;
    prev_node = -1;
    lookahead = None;
  }

let cursor_of_plist l =
  {
    reader = None;
    mem = l;
    mem_pos = 0;
    remaining = Plist.length l;
    prev_node = -1;
    lookahead = None;
  }

let remaining c = c.remaining + (match c.lookahead with Some _ -> 1 | None -> 0)

let decode_one c =
  if c.remaining = 0 then None
  else begin
    c.remaining <- c.remaining - 1;
    match c.reader with
    | Some r ->
      let p = Posting.decode r ~prev_node:c.prev_node in
      c.prev_node <- p.Posting.node;
      Some p
    | None ->
      let p = c.mem.(c.mem_pos) in
      c.mem_pos <- c.mem_pos + 1;
      Some p
  end

let peek c =
  match c.lookahead with
  | Some _ as p -> p
  | None ->
    let p = decode_one c in
    c.lookahead <- p;
    p

let next c =
  match c.lookahead with
  | Some p ->
    c.lookahead <- None;
    Some p
  | None -> decode_one c

let rec skip_to c id =
  match peek c with
  | None -> None
  | Some p when p.Posting.node >= id -> Some p
  | Some _ ->
    ignore (next c);
    skip_to c id

(* n-way merge intersection: advance all cursors to a common node id. *)
let inter_many payloads =
  if payloads = [] then
    invalid_arg "Plist_stream.inter_many: empty intersection is the node universe";
  let cursors = Array.of_list (List.map cursor_of_bytes payloads) in
  let out = ref [] in
  let rec align target i =
    (* Try to bring every cursor to [target]; returns the next candidate
       target, or None at exhaustion. *)
    if i = Array.length cursors then Some target
    else
      match skip_to cursors.(i) target with
      | None -> None
      | Some p when p.Posting.node = target -> align target (i + 1)
      | Some p -> align_from p.Posting.node
  and align_from target = align target 0 in
  let rec loop () =
    match peek cursors.(0) with
    | None -> ()
    | Some p -> (
      match align_from p.Posting.node with
      | None -> ()
      | Some node ->
        (match peek cursors.(0) with
        | Some q when q.Posting.node = node -> out := q :: !out
        | _ -> assert false);
        Array.iter (fun c -> ignore (next c)) cursors;
        loop ())
  in
  loop ();
  Array.of_list (List.rev !out)

let union_with_counts payloads =
  let cursors = List.map cursor_of_bytes payloads in
  let out = ref [] in
  let rec loop () =
    (* smallest head among cursors *)
    let smallest =
      List.fold_left
        (fun acc c ->
          match peek c, acc with
          | None, _ -> acc
          | Some p, None -> Some p.Posting.node
          | Some p, Some m -> Some (min p.Posting.node m))
        None cursors
    in
    match smallest with
    | None -> ()
    | Some node ->
      let count = ref 0 and posting = ref None in
      List.iter
        (fun c ->
          match peek c with
          | Some p when p.Posting.node = node ->
            incr count;
            posting := Some p;
            ignore (next c)
          | _ -> ())
        cursors;
      (match !posting with
      | Some p -> out := (p, !count) :: !out
      | None -> assert false);
      loop ()
  in
  loop ();
  Array.of_list (List.rev !out)
