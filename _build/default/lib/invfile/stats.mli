(** Collection statistics.

    Shape and frequency profiles of an indexed collection: the quantities
    the paper's evaluation narrative refers to (skew of the value
    distribution, wide vs deep structure) made measurable, plus the inputs
    a cost-based optimizer would want. *)

type t = {
  records : int;  (** live records (tombstones excluded) *)
  atoms : int;  (** distinct atoms *)
  internal_nodes : int;
  leaves : int;
  max_depth : int;  (** nesting depth over live records *)
  avg_depth : float;
  avg_fanout : float;  (** internal children per internal node *)
  avg_leaf_count : float;  (** leaf children per internal node *)
  distinct_leaf_ratio : float;
      (** distinct atoms / leaf occurrences — low means skewed/repetitive *)
  posting_histogram : (int * int) list;
      (** (2^k bucket upper bound, atom count): distribution of inverted-
          list lengths, ascending; the long tail of a Zipfian collection
          shows up here *)
  depth_histogram : (int * int) list;
      (** (node depth, internal-node count), ascending *)
  top_atoms : (string * int) list;  (** most frequent atoms, as persisted *)
}

val compute : Inverted_file.t -> t
(** Scans the stored records and the frequency table. O(collection). *)

val skew_estimate : t -> float
(** Crude skew indicator in [0, 1]: the share of leaf occurrences covered
    by the 1% most frequent atoms (0 when the frequency table is absent). *)

val pp : Format.formatter -> t -> unit
