(** Bulk merging of indexed collections.

    [append dst src] rewrites every record of [src] into [dst] so that the
    result is identical to having built one collection from the
    concatenation of both inputs. Because node ids are DFS-contiguous, the
    rewrite is purely mechanical: every id (node, post, parent, children)
    of [src] shifts by [dst]'s node count, record ids by [dst]'s record
    count — no tree re-encoding or re-canonicalization is needed.

    This is the reduce step for parallel index construction: build shards
    independently (e.g. one per domain or input file), then fold them
    together. Cost is O(|src| postings + records); [dst]'s lists only ever
    grow at the tail (all shifted ids exceed [dst]'s). *)

val append : dst:Inverted_file.t -> src:Inverted_file.t -> unit
(** Appends all of [src]'s records to [dst]. Tombstoned [src] records are
    skipped (their slots are not replicated). [src] is read-only; [dst]'s
    in-handle state (roots, counts, memoized node table, caches for touched
    atoms) is kept consistent. Both stores must have been built with a node
    table, or neither.
    @raise Inverted_file.Malformed if [src] stores no record values. *)
