type t = {
  records : int;
  atoms : int;
  internal_nodes : int;
  leaves : int;
  max_depth : int;
  avg_depth : float;
  avg_fanout : float;
  avg_leaf_count : float;
  distinct_leaf_ratio : float;
  posting_histogram : (int * int) list;
  depth_histogram : (int * int) list;
  top_atoms : (string * int) list;
}

let bucket_of n =
  (* smallest power of two ≥ n *)
  let rec go b = if b >= n then b else go (b * 2) in
  go 1

let compute inv =
  let records = ref 0 in
  let internal_nodes = ref 0 in
  let leaves = ref 0 in
  let max_depth = ref 0 in
  let depth_sum = ref 0 in
  let fanout_sum = ref 0 in
  let depth_hist : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Inverted_file.iter_records inv (fun _ value ->
      incr records;
      let rec walk depth v =
        internal_nodes := !internal_nodes + 1;
        depth_sum := !depth_sum + depth;
        max_depth := max !max_depth (depth + 1);
        Hashtbl.replace depth_hist depth
          (1 + Option.value ~default:0 (Hashtbl.find_opt depth_hist depth));
        let subsets = Nested.Value.subsets v in
        leaves := !leaves + List.length (Nested.Value.leaves v);
        fanout_sum := !fanout_sum + List.length subsets;
        List.iter (walk (depth + 1)) subsets
      in
      walk 0 value);
  (* posting-length histogram from the stored inverted lists *)
  let posting_hist : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let atoms = ref 0 in
  (Inverted_file.store inv).Storage.Kv.iter (fun key payload ->
      if String.length key > 0 && key.[0] = 'a' then begin
        incr atoms;
        let len =
          try Plist.length (Plist.of_bytes payload)
          with Storage.Codec.Corrupt _ -> 0
        in
        let b = bucket_of (max 1 len) in
        Hashtbl.replace posting_hist b
          (1 + Option.value ~default:0 (Hashtbl.find_opt posting_hist b))
      end);
  let sorted_hist h =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let fnodes = Float.of_int (max 1 !internal_nodes) in
  {
    records = !records;
    atoms = !atoms;
    internal_nodes = !internal_nodes;
    leaves = !leaves;
    max_depth = !max_depth;
    avg_depth = Float.of_int !depth_sum /. fnodes;
    avg_fanout = Float.of_int !fanout_sum /. fnodes;
    avg_leaf_count = Float.of_int !leaves /. fnodes;
    distinct_leaf_ratio = Float.of_int !atoms /. Float.of_int (max 1 !leaves);
    posting_histogram = sorted_hist posting_hist;
    depth_histogram = sorted_hist depth_hist;
    top_atoms = Inverted_file.top_atoms inv;
  }

let skew_estimate t =
  match t.top_atoms with
  | [] -> 0.
  | top ->
    let head_count = max 1 (t.atoms / 100) in
    let head =
      List.filteri (fun i _ -> i < head_count) top
      |> List.fold_left (fun acc (_, c) -> acc + c) 0
    in
    (* top_atoms counts postings (node occurrences ≈ leaf occurrences) *)
    Float.min 1. (Float.of_int head /. Float.of_int (max 1 t.leaves))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "records              %d@," t.records;
  Format.fprintf ppf "distinct atoms       %d@," t.atoms;
  Format.fprintf ppf "internal nodes       %d@," t.internal_nodes;
  Format.fprintf ppf "leaves               %d@," t.leaves;
  Format.fprintf ppf "max depth            %d@," t.max_depth;
  Format.fprintf ppf "avg node depth       %.2f@," t.avg_depth;
  Format.fprintf ppf "avg fanout           %.2f@," t.avg_fanout;
  Format.fprintf ppf "avg leaves per node  %.2f@," t.avg_leaf_count;
  Format.fprintf ppf "distinct-leaf ratio  %.3f@," t.distinct_leaf_ratio;
  Format.fprintf ppf "skew estimate        %.2f@," (skew_estimate t);
  Format.fprintf ppf "postings per atom (≤bucket: atoms):@,";
  List.iter (fun (b, c) -> Format.fprintf ppf "  ≤%-8d %d@," b c) t.posting_histogram;
  Format.fprintf ppf "nodes per depth:@,";
  List.iter (fun (d, c) -> Format.fprintf ppf "  %-9d %d@," d c) t.depth_histogram;
  Format.fprintf ppf "@]"
