let encode dict value =
  if Nested.Value.is_atom value then
    invalid_arg "Value_codec.encode: record value must be a set";
  let w = Storage.Codec.writer () in
  let rec go v =
    let leaves = Nested.Value.leaves v in
    let subsets = Nested.Value.subsets v in
    Storage.Codec.write_varint w (List.length leaves);
    List.iter (fun a -> Storage.Codec.write_varint w (Dict.intern dict a)) leaves;
    Storage.Codec.write_varint w (List.length subsets);
    List.iter go subsets
  in
  go value;
  "B" ^ Storage.Codec.contents w

let encode_syntax value = "S" ^ Nested.Syntax.to_string value

let decode_binary dict payload =
  let r = Storage.Codec.reader_sub payload ~pos:1 ~len:(String.length payload - 1) in
  let rec go () =
    let n_leaves = Storage.Codec.read_varint r in
    let leaves = ref [] in
    for _ = 1 to n_leaves do
      let id = Storage.Codec.read_varint r in
      match Dict.atom_of_id dict id with
      | a -> leaves := Nested.Value.atom a :: !leaves
      | exception Not_found ->
        raise (Storage.Codec.Corrupt (Printf.sprintf "dangling atom id %d" id))
    done;
    let n_children = Storage.Codec.read_varint r in
    let children = ref [] in
    for _ = 1 to n_children do
      children := go () :: !children
    done;
    Nested.Value.set (List.rev !leaves @ List.rev !children)
  in
  go ()

let decode dict payload =
  if String.length payload = 0 then
    raise (Storage.Codec.Corrupt "Value_codec: empty payload");
  match payload.[0] with
  | 'B' -> decode_binary dict payload
  | 'S' -> (
    match Nested.Syntax.of_string_opt (String.sub payload 1 (String.length payload - 1)) with
    | Some v -> v
    | None -> raise (Storage.Codec.Corrupt "Value_codec: malformed syntax payload"))
  | _ -> raise (Storage.Codec.Corrupt "Value_codec: unknown record format tag")
