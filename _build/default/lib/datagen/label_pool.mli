(** Leaf-label universes.

    The paper draws synthetic leaf values from "a fixed domain of 10,000,000
    labels" (Sec. 5.1). A pool maps ranks (1-based, as produced by uniform
    or Zipfian draws) to short atom strings; rank 1 is the most frequent
    label under a skewed draw. *)

type t

val create : ?prefix:string -> int -> t
(** [create n] is a pool of [n] labels. Default prefix ["v"]. *)

val size : t -> int

val label : t -> int -> string
(** [label t rank] for [1 ≤ rank ≤ size t] — e.g. ["v17"].
    @raise Invalid_argument out of range. *)

val rank_of_label : t -> string -> int option

val uniform : t -> Random.State.t -> string
val zipf : t -> Zipf.t -> Random.State.t -> string
(** The Zipf sampler's [n] must not exceed the pool size.
    @raise Invalid_argument otherwise. *)

val paper_domain : int
(** [10_000_000] — the paper's domain size. *)
