(** Zipfian sampling (paper, Sec. 5.1; Gray et al., SIGMOD 1994 — the
    paper's reference [12]).

    Draws ranks from [{1, …, n}] with [P(i) ∝ 1/i^θ], skew [0 < θ < 1] as
    in the paper (the closer θ is to 1, the greater the skew; the paper's
    experiments use θ ∈ {0.5, 0.7, 0.9}). Uses Gray et al.'s constant-time
    approximate inversion after a one-time harmonic-sum precomputation,
    with samplers memoized per (n, θ). *)

type t

val create : n:int -> theta:float -> t
(** @raise Invalid_argument unless [n ≥ 1] and [0 < theta < 1]. *)

val n : t -> int
val theta : t -> float

val sample : t -> Random.State.t -> int
(** A rank in [{1, …, n}]. *)

val expected_probability : t -> int -> float
(** [P(rank)] under the exact distribution — for tests. *)
