lib/datagen/label_pool.mli: Random Zipf
