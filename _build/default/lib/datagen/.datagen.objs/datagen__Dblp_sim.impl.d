lib/datagen/dblp_sim.ml: List Nested Printf Random Seq String Textformats Zipf
