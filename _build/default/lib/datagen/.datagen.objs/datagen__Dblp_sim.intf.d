lib/datagen/dblp_sim.mli: Nested Seq Textformats
