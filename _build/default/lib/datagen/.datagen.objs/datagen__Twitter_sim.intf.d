lib/datagen/twitter_sim.mli: Nested Seq Textformats
