lib/datagen/zipf.mli: Random
