lib/datagen/synthetic.mli: Label_pool Nested Seq
