lib/datagen/workload.ml: Array Format Invfile List Nested Printf Random
