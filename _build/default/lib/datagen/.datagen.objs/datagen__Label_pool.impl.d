lib/datagen/label_pool.ml: Printf Random String Zipf
