lib/datagen/synthetic.ml: Label_pool List Nested Option Random Seq Zipf
