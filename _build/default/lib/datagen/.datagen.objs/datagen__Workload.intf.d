lib/datagen/workload.mli: Format Invfile Nested Random
