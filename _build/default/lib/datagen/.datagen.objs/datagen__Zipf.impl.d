lib/datagen/zipf.ml: Float Hashtbl Random
