lib/datagen/twitter_sim.ml: Array Float List Nested Printf Random Seq String Textformats Zipf
