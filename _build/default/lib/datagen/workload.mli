(** Benchmark query workloads (paper, Sec. 5.1, "Queries").

    "We arbitrarily selected 100 nested sets from each data collection S.
    We distorted half of the selected queries such that they are not
    contained in the data collection [...]; this was done by adding a new
    leaf value to each set which does not appear anywhere else in the
    database."

    Positive queries are records drawn from the collection itself (each is
    trivially contained in its source record); negatives get a fresh leaf
    atom inserted at a uniformly chosen internal node. *)

type query = {
  value : Nested.Value.t;
  positive : bool;  (** whether the query should have ≥ 1 result *)
  source_record : int;
}

val benchmark_queries :
  ?seed:int -> ?count:int -> Invfile.Inverted_file.t -> query list
(** [count] defaults to the paper's 100 (half distorted), capped at the
    collection size. Fresh negative atoms are of the form ["⊥neg<i>"],
    which cannot collide with generator or example atoms; callers indexing
    adversarial data should check {!Invfile.Inverted_file.mem_atom}. *)

val values : query list -> Nested.Value.t list

val distort : Random.State.t -> fresh:string -> Nested.Value.t -> Nested.Value.t
(** Inserts the fresh atom as a leaf of a uniformly random internal node. *)

val pp_query : Format.formatter -> query -> unit
