(** Synthetic Twitter-style JSON collection.

    Stand-in for the paper's first real data set — tweets about a pop idol
    collected through the Twitter Search API (Sec. 5.1), which is not
    available in this environment. The generator preserves the properties
    the experiment exercises: genuinely nested records (user and entity
    sub-objects, arrays of hashtags/urls/mentions) and a skewed value
    distribution — "popular users dominate the discussion" — via Zipfian
    draws of users, hashtags, and text vocabulary. See DESIGN.md, system
    inventory entry 15. *)

type gen

val make :
  ?seed:int ->
  ?users:int ->
  ?hashtags:int ->
  ?vocabulary:int ->
  ?theta:float ->
  unit ->
  gen
(** Defaults: 5,000 users, 500 hashtags, 20,000 words, θ = 0.7. *)

val tweet_json : gen -> Textformats.Json.t
(** The next random tweet as a JSON object. *)

val tweet : gen -> Nested.Value.t
(** The next tweet, mapped through {!Textformats.Json_nested}. *)

val values : gen -> int -> Nested.Value.t list
val seq : gen -> int -> Nested.Value.t Seq.t

(** {1 Query helpers} *)

val user_query : screen_name:string -> Nested.Value.t
(** Pattern matching tweets by a given user. *)

val hashtag_query : tag:string -> Nested.Value.t
(** Pattern matching tweets carrying a given hashtag. *)

val screen_name : int -> string
(** The screen name of user rank [i] (rank 1 = most active). *)

val hashtag : int -> string
