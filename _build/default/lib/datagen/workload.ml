type query = {
  value : Nested.Value.t;
  positive : bool;
  source_record : int;
}

(* Inserts [fresh] at internal node number [target] (pre-order). Returns
   the rewritten value and the number of internal nodes seen. *)
let rec insert_at v target counter fresh =
  let my_index = !counter in
  incr counter;
  let elems =
    List.map
      (fun e ->
        if Nested.Value.is_set e then insert_at e target counter fresh else e)
      (Nested.Value.elements v)
  in
  let elems =
    if my_index = target then Nested.Value.atom fresh :: elems else elems
  in
  Nested.Value.set elems

let distort rng ~fresh v =
  let n = Nested.Value.internal_count v in
  let target = Random.State.int rng (max 1 n) in
  insert_at v target (ref 0) fresh

let benchmark_queries ?(seed = 42) ?(count = 100) inv =
  let rng = Random.State.make [| seed; 0xbe9c |] in
  let n_records = Invfile.Inverted_file.record_count inv in
  if n_records = 0 then invalid_arg "Workload.benchmark_queries: empty collection";
  let count = min count n_records in
  (* Arbitrary selection: distinct record ids via partial shuffle. *)
  let ids = Array.init n_records (fun i -> i) in
  for i = 0 to count - 1 do
    let j = i + Random.State.int rng (n_records - i) in
    let t = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- t
  done;
  List.init count (fun i ->
      let source_record = ids.(i) in
      let base = Invfile.Inverted_file.record_value inv source_record in
      if i land 1 = 0 then { value = base; positive = true; source_record }
      else
        let fresh = Printf.sprintf "⊥neg%d" i in
        { value = distort rng ~fresh base; positive = false; source_record })

let values qs = List.map (fun q -> q.value) qs

let pp_query ppf q =
  Format.fprintf ppf "[%s from record %d] %a"
    (if q.positive then "pos" else "neg")
    q.source_record Nested.Value.pp q.value
