type shape = Wide | Deep

type params = {
  max_leaves : int;
  max_internal : int;
  stop_probability : float;
  max_depth : int;
}

let params_of_shape ?(max_depth = 16) = function
  | Wide -> { max_leaves = 12; max_internal = 6; stop_probability = 0.8; max_depth }
  | Deep -> { max_leaves = 2; max_internal = 3; stop_probability = 0.2; max_depth }

type label_dist = Uniform | Zipfian of float

type gen = {
  rng : Random.State.t;
  params : params;
  pool : Label_pool.t;
  sample_label : Random.State.t -> string;
}

let make ?(seed = 42) ?pool ~params dist =
  if params.max_leaves < 1 || params.max_internal < 1 then
    invalid_arg "Synthetic.make: Table-3 bounds must be ≥ 1";
  if params.stop_probability < 0. || params.stop_probability > 1. then
    invalid_arg "Synthetic.make: stopping probability out of [0,1]";
  if params.max_depth < 1 then invalid_arg "Synthetic.make: max_depth must be ≥ 1";
  let pool = Option.value ~default:(Label_pool.create 100_000) pool in
  let sample_label =
    match dist with
    | Uniform -> fun rng -> Label_pool.uniform pool rng
    | Zipfian theta ->
      let z = Zipf.create ~n:(Label_pool.size pool) ~theta in
      fun rng -> Label_pool.zipf pool z rng
  in
  { rng = Random.State.make [| seed |]; params; pool; sample_label }

let pool g = g.pool

(* One node of the Table-3 process. [depth] counts internal levels from the
   root (0); at [max_depth - 1] the node takes leaves only. *)
let rec gen_node g depth =
  let p = g.params in
  let n_leaves = 1 + Random.State.int g.rng p.max_leaves in
  let leaves = List.init n_leaves (fun _ -> Nested.Value.atom (g.sample_label g.rng)) in
  let stop =
    depth >= p.max_depth - 1
    || Random.State.float g.rng 1. < p.stop_probability
  in
  let children =
    if stop then []
    else begin
      let n_internal = 1 + Random.State.int g.rng p.max_internal in
      List.init n_internal (fun _ -> gen_node g (depth + 1))
    end
  in
  Nested.Value.set (leaves @ children)

let value g = gen_node g 0

let values g count = List.init count (fun _ -> value g)

let seq g count =
  let rec from i () =
    if i >= count then Seq.Nil else Seq.Cons (value g, from (i + 1))
  in
  from 0
