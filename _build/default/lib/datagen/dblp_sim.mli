(** Synthetic DBLP-style XML collection.

    Stand-in for the paper's second real data set — article records from
    the DBLP Computer Science Bibliography as XML (Sec. 5.1), not available
    in this environment. The generator reproduces the properties that
    matter: shallow but heterogeneous records (variable author counts,
    optional fields, two record types), and a skewed distribution of
    authors, venues, and title vocabulary — the paper found both real data
    sets "skewed". See DESIGN.md, system inventory entry 16. *)

type gen

val make :
  ?seed:int ->
  ?authors:int ->
  ?venues:int ->
  ?vocabulary:int ->
  ?theta:float ->
  unit ->
  gen
(** Defaults: 20,000 authors, 800 venues, 10,000 title words, θ = 0.7. *)

val article_xml : gen -> Textformats.Xml.t
(** The next random record — an [<article>] or [<inproceedings>] element
    in DBLP's layout. *)

val article : gen -> Nested.Value.t
(** The next record, mapped through {!Textformats.Xml_nested} with
    [~tokenize:true] (title words become individual atoms). *)

val values : gen -> int -> Nested.Value.t list
val seq : gen -> int -> Nested.Value.t Seq.t

(** {1 Query helpers} *)

val author_query : author:string -> Nested.Value.t
(** Pattern matching records with the given author. *)

val author_venue_query : author:string -> venue:string -> Nested.Value.t

val author_name : int -> string
(** Author of rank [i] (rank 1 = most prolific). *)

val venue_name : int -> string
