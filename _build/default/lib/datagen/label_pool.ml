type t = { prefix : string; size : int }

let create ?(prefix = "v") size =
  if size < 1 then invalid_arg "Label_pool.create: size must be ≥ 1";
  { prefix; size }

let size t = t.size

let label t rank =
  if rank < 1 || rank > t.size then
    invalid_arg (Printf.sprintf "Label_pool.label: rank %d of %d" rank t.size);
  t.prefix ^ string_of_int rank

let rank_of_label t s =
  let pl = String.length t.prefix in
  if String.length s > pl && String.sub s 0 pl = t.prefix then
    match int_of_string_opt (String.sub s pl (String.length s - pl)) with
    | Some r when r >= 1 && r <= t.size -> Some r
    | _ -> None
  else None

let uniform t rng = label t (1 + Random.State.int rng t.size)

let zipf t z rng =
  if Zipf.n z > t.size then invalid_arg "Label_pool.zipf: sampler exceeds pool";
  label t (Zipf.sample z rng)

let paper_domain = 10_000_000
