(** Synthetic nested-set generation (paper, Sec. 5.1 and Table 3).

    The paper's process, per nested set: starting at the root, (1) choose a
    number of leaf children at random and label them; (2) stop extending
    the node with the stopping probability; (3) otherwise choose a number
    of internal children at random and recur on each.

    Table 3's parameters:

    {v
                                   wide sets   deep sets
      max # of leaves per node        12           2
      max # of non-leaves per node     6           3
      stopping probability           0.8         0.2
    v}

    Deviation (documented in DESIGN.md): the "deep" parameters describe a
    branching process with mean offspring 0.8 × 2 = 1.6 > 1, which produces
    unbounded trees with positive probability, so a maximum depth caps the
    recursion (default 16; nodes at the cap receive leaves only). *)

type shape = Wide | Deep

type params = {
  max_leaves : int;  (** leaf children drawn uniformly from 1..max *)
  max_internal : int;  (** internal children drawn uniformly from 1..max *)
  stop_probability : float;
  max_depth : int;
}

val params_of_shape : ?max_depth:int -> shape -> params
(** Table 3's parameters for the shape. *)

type label_dist =
  | Uniform
  | Zipfian of float  (** skew θ, 0 < θ < 1 *)

type gen

val make :
  ?seed:int -> ?pool:Label_pool.t -> params:params -> label_dist -> gen
(** Default pool: 100,000 labels (a scaled-down stand-in for the paper's
    10M — override with [~pool:(Label_pool.create Label_pool.paper_domain)]
    for full-scale runs). Deterministic for a given seed (default 42). *)

val value : gen -> Nested.Value.t
(** The next random nested set. *)

val values : gen -> int -> Nested.Value.t list

val seq : gen -> int -> Nested.Value.t Seq.t
(** Lazily generates [count] sets (for collections too large to hold). *)

val pool : gen -> Label_pool.t
