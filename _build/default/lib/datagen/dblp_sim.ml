module X = Textformats.Xml

type gen = {
  rng : Random.State.t;
  authors : Zipf.t;
  venues : Zipf.t;
  vocabulary : Zipf.t;
  mutable next_key : int;
}

let make ?(seed = 42) ?(authors = 20_000) ?(venues = 800) ?(vocabulary = 10_000)
    ?(theta = 0.7) () =
  {
    rng = Random.State.make [| seed; 0xdb19 |];
    authors = Zipf.create ~n:authors ~theta;
    venues = Zipf.create ~n:venues ~theta;
    vocabulary = Zipf.create ~n:vocabulary ~theta;
    next_key = 1;
  }

let author_name i = "Author_" ^ string_of_int i
let venue_name i = "Venue" ^ string_of_int i
let title_word i = "kw" ^ string_of_int i

let el tag children = X.Element { tag; attrs = []; children }
let txt s = X.Text s

let article_xml g =
  let rng = g.rng in
  let key = g.next_key in
  g.next_key <- key + 1;
  let is_journal = Random.State.float rng 1. < 0.55 in
  let record_tag = if is_journal then "article" else "inproceedings" in
  let venue_tag = if is_journal then "journal" else "booktitle" in
  let n_authors = 1 + Random.State.int rng 4 in
  let authors =
    List.init n_authors (fun _ -> author_name (Zipf.sample g.authors rng))
    |> List.sort_uniq String.compare
  in
  let n_words = 4 + Random.State.int rng 6 in
  let title =
    String.concat " "
      (List.init n_words (fun _ -> title_word (Zipf.sample g.vocabulary rng)))
    ^ "."
  in
  let venue = venue_name (Zipf.sample g.venues rng) in
  let year = 1970 + Random.State.int rng 43 in
  let first_page = 1 + Random.State.int rng 400 in
  let pages = Printf.sprintf "%d-%d" first_page (first_page + Random.State.int rng 30) in
  let optional =
    List.concat
      [
        (if is_journal then
           [ el "volume" [ txt (string_of_int (1 + Random.State.int rng 40)) ] ]
         else []);
        (if Random.State.float rng 1. < 0.7 then
           [ el "ee" [ txt (Printf.sprintf "https://doi.org/10.0/%d" key) ] ]
         else []);
      ]
  in
  X.Element
    {
      tag = record_tag;
      attrs =
        [
          ("key", Printf.sprintf "%s/%s/rec%d" (if is_journal then "journals" else "conf") venue key);
          ("mdate", Printf.sprintf "20%02d-%02d-%02d" (Random.State.int rng 13)
             (1 + Random.State.int rng 12) (1 + Random.State.int rng 28));
        ];
      children =
        List.map (fun a -> el "author" [ txt a ]) authors
        @ [
            el "title" [ txt title ];
            el "pages" [ txt pages ];
            el "year" [ txt (string_of_int year) ];
            el venue_tag [ txt venue ];
          ]
        @ optional;
    }

let article g = Textformats.Xml_nested.of_xml ~tokenize:true (article_xml g)

let values g count = List.init count (fun _ -> article g)

let seq g count =
  let rec from i () = if i >= count then Seq.Nil else Seq.Cons (article g, from (i + 1)) in
  from 0

let author_query ~author =
  Textformats.Xml_nested.element "author" [ Nested.Value.atom author ]
  |> fun a -> Nested.Value.set [ a ]

let author_venue_query ~author ~venue =
  Nested.Value.set
    [
      Textformats.Xml_nested.element "author" [ Nested.Value.atom author ];
      Textformats.Xml_nested.element "journal" [ Nested.Value.atom venue ];
    ]
