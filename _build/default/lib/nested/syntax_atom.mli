(** Atom quoting for the nested-set literal syntax (shared between
    {!Value.pp} and {!Syntax}). *)

val is_bare_char : char -> bool
(** Characters allowed in an unquoted atom (no whitespace, braces, commas,
    quotes, or backslashes). *)

val is_bare : string -> bool
(** Whether an atom prints without quoting. *)

val pp : Format.formatter -> string -> unit
(** Prints the atom, double-quoting and escaping when needed. *)
