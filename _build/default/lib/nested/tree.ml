type node = {
  id : int;
  parent : int;
  leaves : string array;
  children : int array;
  post : int;
  depth : int;
}

type t = {
  record_id : int;
  root : int;
  first_id : int;
  nodes : node array;
}

type allocator = { mutable pre : int; mutable post : int }

let allocator () = { pre = 0; post = 0 }
let next_id alloc = alloc.pre

(* Nodes are accumulated in a growing buffer during the DFS; ids are
   pre-order ranks so the buffer index of a node is [id - first_id]. *)
let of_value alloc ~record_id value =
  if Value.is_atom value then
    invalid_arg "Tree.of_value: record value must be a set";
  let first_id = alloc.pre in
  let buf = ref [] and count = ref 0 in
  let rec build parent depth v =
    let id = alloc.pre in
    alloc.pre <- alloc.pre + 1;
    let leaves = Array.of_list (Value.leaves v) in
    let children = List.map (build id (depth + 1)) (Value.subsets v) in
    let post = alloc.post in
    alloc.post <- alloc.post + 1;
    let n = { id; parent; leaves; children = Array.of_list children; post; depth } in
    buf := n :: !buf;
    incr count;
    id
  in
  let root = build (-1) 0 value in
  let nodes = Array.make !count (List.hd !buf) in
  List.iter (fun n -> nodes.(n.id - first_id) <- n) !buf;
  { record_id; root; first_id; nodes }

let mem_id t id = id >= t.first_id && id < t.first_id + Array.length t.nodes

let node t id =
  if not (mem_id t id) then
    invalid_arg (Printf.sprintf "Tree.node: id %d not in record %d" id t.record_id);
  t.nodes.(id - t.first_id)

let root_node t = node t t.root
let node_count t = Array.length t.nodes

let is_descendant t ~anc ~desc =
  let a = node t anc and d = node t desc in
  a.id < d.id && d.post < a.post

let iter f t = Array.iter f t.nodes
let fold f acc t = Array.fold_left f acc t.nodes

let rec value_of_node t id =
  let n = node t id in
  let leaf_values = Array.to_list (Array.map Value.atom n.leaves) in
  let child_values = Array.to_list (Array.map (value_of_node t) n.children) in
  Value.set (leaf_values @ child_values)

let to_value t = value_of_node t t.root

let leaf_count t = fold (fun acc n -> acc + Array.length n.leaves) 0 t

let depth t = 1 + fold (fun acc n -> max acc n.depth) 0 t

let pp ppf t =
  Format.fprintf ppf "@[<v>record %d (root %d)@," t.record_id t.root;
  iter
    (fun n ->
      Format.fprintf ppf "  node %d (parent %d, post %d, depth %d): leaves {%s} children [%s]@,"
        n.id n.parent n.post n.depth
        (String.concat ", " (Array.to_list n.leaves))
        (String.concat "; " (List.map string_of_int (Array.to_list n.children))))
    t;
  Format.fprintf ppf "@]"

let allocator_from id =
  if id < 0 then invalid_arg "Tree.allocator_from: negative id";
  { pre = id; post = id }

let subtree_value = value_of_node
