(** Nested set values.

    A nested set is a finite set whose elements are atoms (strings) or nested
    sets, with no bound on cardinality or nesting depth (paper, Sec. 2). Sets
    are unordered and duplicate-free; values are kept in a canonical form
    (elements recursively canonicalized, sorted, and deduplicated) so that
    structural equality coincides with set equality. *)

type t = private
  | Atom of string
  | Set of t list
      (** Invariant: the list is sorted by [compare] and duplicate-free, and
          every element is itself canonical. *)

(** {1 Construction} *)

val atom : string -> t
(** [atom a] is the atomic value [a]. *)

val set : t list -> t
(** [set elems] is the set of [elems], canonicalized (sorted, deduplicated). *)

val empty : t
(** The empty set [{}]. *)

val of_atoms : string list -> t
(** [of_atoms l] is the flat set of the atoms in [l]. *)

(** {1 Observation} *)

val is_atom : t -> bool
val is_set : t -> bool

val elements : t -> t list
(** [elements v] are the elements of a set value, in canonical order.
    @raise Invalid_argument on an atom. *)

val leaves : t -> string list
(** [leaves v] are the atomic elements of a set value, sorted.
    @raise Invalid_argument on an atom. *)

val subsets : t -> t list
(** [subsets v] are the set-valued elements of a set value, in canonical
    order. @raise Invalid_argument on an atom. *)

val mem : t -> t -> bool
(** [mem x v] tests whether [x] is an element of the set [v]. *)

(** {1 Measures} *)

val cardinal : t -> int
(** Number of (distinct) elements of a set; [0] for an atom. *)

val size : t -> int
(** Total number of nodes in the tree view (internal nodes + leaves). *)

val internal_count : t -> int
(** Number of internal (set) nodes in the tree view. *)

val leaf_count : t -> int
(** Number of leaf nodes in the tree view. *)

val depth : t -> int
(** Nesting depth: [0] for an atom, [1 + max over elements] for a non-empty
    set, [1] for the empty set. *)

val atom_universe : t -> string list
(** All distinct atoms occurring anywhere in the value, sorted. *)

(** {1 Comparison} *)

val compare : t -> t -> int
(** Total order on canonical values: atoms before sets, atoms by string
    order, sets lexicographically on canonical element lists. *)

val equal : t -> t -> bool

val hash : t -> int

(** {1 Transformation} *)

val map_atoms : (string -> string) -> t -> t
(** [map_atoms f v] renames every atom with [f] (re-canonicalizing). *)

val add : t -> t -> t
(** [add x v] is the set [v] with element [x] added. *)

val remove : t -> t -> t
(** [remove x v] is the set [v] without element [x]. *)

(** {1 Flat-set operations}

    These treat the top level of two set values as flat sets of canonical
    elements. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool

(** {1 Pretty printing} *)

val pp : Format.formatter -> t -> unit
(** Prints in the literal syntax of {!Syntax}, e.g. [{A, motorbike, {B}}]. *)

val to_string : t -> string
