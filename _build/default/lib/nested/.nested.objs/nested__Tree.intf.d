lib/nested/tree.mli: Format Value
