lib/nested/syntax.ml: Buffer List Printf String Syntax_atom Value
