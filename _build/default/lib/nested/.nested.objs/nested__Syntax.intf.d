lib/nested/syntax.mli: Format Value
