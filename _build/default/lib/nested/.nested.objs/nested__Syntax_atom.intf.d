lib/nested/syntax_atom.mli: Format
