lib/nested/tree.ml: Array Format List Printf String Value
