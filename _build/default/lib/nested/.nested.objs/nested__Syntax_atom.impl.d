lib/nested/syntax_atom.ml: Format String
