lib/nested/value.mli: Format
