lib/nested/value.ml: Format Hashtbl List String Syntax_atom
