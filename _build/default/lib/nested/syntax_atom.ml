(* Quoting rules for atoms in the nested-set literal syntax.

   A bare atom may contain any character except the syntax delimiters
   '{' '}' ',' '"' and whitespace. Anything else is printed as a
   double-quoted string with backslash escapes. *)

let is_bare_char = function
  | '{' | '}' | ',' | '"' | '\\' -> false
  | c -> not (c = ' ' || c = '\t' || c = '\n' || c = '\r')

let is_bare a = a <> "" && String.for_all is_bare_char a

let pp ppf a =
  if is_bare a then Format.pp_print_string ppf a
  else begin
    Format.pp_print_char ppf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Format.pp_print_string ppf "\\\""
        | '\\' -> Format.pp_print_string ppf "\\\\"
        | '\n' -> Format.pp_print_string ppf "\\n"
        | '\t' -> Format.pp_print_string ppf "\\t"
        | '\r' -> Format.pp_print_string ppf "\\r"
        | c -> Format.pp_print_char ppf c)
      a;
    Format.pp_print_char ppf '"'
  end
