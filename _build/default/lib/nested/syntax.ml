exception Parse_error of { pos : int; message : string }

let fail pos message = raise (Parse_error { pos; message })

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while
    match peek st with
    | Some c when is_space c -> true
    | _ -> false
  do
    advance st
  done

let parse_quoted st =
  (* Consumes the opening quote's contents up to the closing quote. *)
  let start = st.pos in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail start "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st.pos "unterminated escape sequence"
      | Some c ->
        let decoded =
          match c with
          | '"' -> '"'
          | '\\' -> '\\'
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | c -> fail st.pos (Printf.sprintf "invalid escape '\\%c'" c)
        in
        Buffer.add_char buf decoded;
        advance st;
        loop ())
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_bare st =
  let start = st.pos in
  while
    match peek st with
    | Some c when Syntax_atom.is_bare_char c -> true
    | _ -> false
  do
    advance st
  done;
  if st.pos = start then fail start "expected a value";
  String.sub st.input start (st.pos - start)

let rec parse_value st =
  skip_space st;
  match peek st with
  | Some '{' ->
    advance st;
    let elems = parse_elements st in
    Value.set elems
  | Some '"' -> Value.atom (parse_quoted st)
  | Some _ -> Value.atom (parse_bare st)
  | None -> fail st.pos "unexpected end of input"

and parse_elements st =
  skip_space st;
  match peek st with
  | Some '}' ->
    advance st;
    []
  | None -> fail st.pos "unterminated set: expected '}'"
  | Some _ ->
    let first = parse_value st in
    let rec rest acc =
      skip_space st;
      match peek st with
      | Some ',' ->
        advance st;
        let v = parse_value st in
        rest (v :: acc)
      | Some '}' ->
        advance st;
        List.rev acc
      | Some c -> fail st.pos (Printf.sprintf "expected ',' or '}', found '%c'" c)
      | None -> fail st.pos "unterminated set: expected '}'"
    in
    rest [ first ]

let of_string s =
  let st = { input = s; pos = 0 } in
  let v = parse_value st in
  skip_space st;
  (match peek st with
  | Some c -> fail st.pos (Printf.sprintf "trailing input starting with '%c'" c)
  | None -> ());
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let pp = Value.pp
let to_string = Value.to_string

let parse_many s =
  let st = { input = s; pos = 0 } in
  let rec loop acc =
    skip_space st;
    match peek st with
    | None -> List.rev acc
    | Some _ -> loop (parse_value st :: acc)
  in
  loop []
