(** Literal syntax for nested set values.

    Values are written as in the paper: [{London, UK, {UK, {A, motorbike}}}].
    Atoms may be bare (no whitespace, braces, commas, or double quotes) or
    double-quoted with backslash escapes (quote, backslash, [\n], [\t],
    [\r]). A top-level bare or
    quoted atom parses to an atomic value. *)

exception Parse_error of { pos : int; message : string }
(** Raised on malformed input; [pos] is a 0-based byte offset. *)

val of_string : string -> Value.t
(** Parses a single value, requiring the whole input to be consumed (modulo
    trailing whitespace). @raise Parse_error on malformed input. *)

val of_string_opt : string -> Value.t option

val to_string : Value.t -> string
(** Prints in a form [of_string] parses back to an [equal] value. *)

val pp : Format.formatter -> Value.t -> unit

val parse_many : string -> Value.t list
(** Parses a sequence of whitespace- or newline-separated values, e.g. a
    collection file with one record per line.
    @raise Parse_error on malformed input. *)
