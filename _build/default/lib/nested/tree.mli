(** Tree encoding of nested sets with node identifiers.

    A nested set is viewed as an unordered node-labelled rooted tree whose
    internal nodes denote sets and whose leaves denote atoms (paper, Sec. 2).
    Every internal node receives an integer identifier that is unique across
    a whole collection; identifiers are assigned in depth-first pre-order by
    a shared {!allocator}, so that

    - the internal-node ids of one record form a contiguous range,
    - the ids of a node's internal children are strictly increasing, and
    - [(pre, post)] intervals (with [pre = id]) give constant-time
      ancestor–descendant tests within a record (used for homeomorphic
      containment, paper Sec. 4.2). *)

type node = {
  id : int;  (** unique across the collection; equals the pre-order rank *)
  parent : int;  (** id of the parent internal node, or [-1] for the root *)
  leaves : string array;  (** sorted, distinct leaf labels of this set *)
  children : int array;  (** ids of internal children, strictly increasing *)
  post : int;  (** post-order rank, from the same allocator as [id] *)
  depth : int;  (** root has depth [0] *)
}

type t = {
  record_id : int;
  root : int;  (** id of the root node *)
  first_id : int;  (** smallest node id of this record *)
  nodes : node array;  (** indexed by [id - first_id] *)
}

(** {1 Id allocation} *)

type allocator

val allocator : unit -> allocator

val next_id : allocator -> int
(** The id the next created node would receive (exclusive upper bound of all
    ids allocated so far). *)

(** {1 Construction} *)

val of_value : allocator -> record_id:int -> Value.t -> t
(** Encodes a set value. @raise Invalid_argument if the value is an atom. *)

val to_value : t -> Value.t
(** Inverse of [of_value] (up to canonical form). *)

(** {1 Access} *)

val node : t -> int -> node
(** [node t id] looks a node up by id. @raise Invalid_argument if [id] does
    not belong to this record. *)

val mem_id : t -> int -> bool
val root_node : t -> node
val node_count : t -> int

val is_descendant : t -> anc:int -> desc:int -> bool
(** Strict descendant test via pre/post intervals; [is_descendant ~anc:x
    ~desc:x] is [false]. *)

val iter : (node -> unit) -> t -> unit
val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

val leaf_count : t -> int
(** Total number of leaves in the record. *)

val depth : t -> int
(** Maximum node depth plus one (= nesting depth of the value). *)

val pp : Format.formatter -> t -> unit

val allocator_from : int -> allocator
(** An allocator whose pre and post counters both start at the given id —
    used to re-encode a stored record at its original id range (records
    occupy contiguous, equal pre and post ranges). *)

val subtree_value : t -> int -> Value.t
(** The value of the subtree rooted at a node id.
    @raise Invalid_argument if the id is not in this record. *)
