let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun t -> t <> "")

let rec of_xml ?(tokenize = false) = function
  | Xml.Text s ->
    if tokenize then Nested.Value.of_atoms (tokens s)
    else Nested.Value.atom (String.trim s)
  | Xml.Element { tag; attrs; children } ->
    let attr_values =
      List.map
        (fun (k, v) ->
          Nested.Value.set [ Nested.Value.atom ("@" ^ k); Nested.Value.atom v ])
        attrs
    in
    (* A text child contributes its atom(s) directly into the element's
       set; element children contribute one nested set each. *)
    let child_values =
      List.concat_map
        (fun c ->
          match c with
          | Xml.Text s ->
            if tokenize then List.map Nested.Value.atom (tokens s)
            else [ Nested.Value.atom (String.trim s) ]
          | Xml.Element _ -> [ of_xml ~tokenize c ])
        children
    in
    Nested.Value.set (Nested.Value.atom tag :: (attr_values @ child_values))

let element tag members = Nested.Value.set (Nested.Value.atom tag :: members)
