(** Mapping XML into the nested-set data model.

    The paper maps DBLP article records "directly into nested sets in our
    model" (Sec. 5.1). Encoding:

    - an element becomes a set containing its tag name as an atom, the
      encoding of each attribute [k="v"] as the two-element set [{@k, v}]
      (attribute names are prefixed with [@] to keep them distinct from
      tags), and the encoding of each child;
    - a text node becomes its whitespace-trimmed string as an atom;
      optionally ({!of_xml} [~tokenize:true]) text is split on whitespace
      into one atom per token, which makes word-level containment queries
      possible (e.g. title keywords). *)

val of_xml : ?tokenize:bool -> Xml.t -> Nested.Value.t
(** [tokenize] defaults to [false]. *)

val element : string -> Nested.Value.t list -> Nested.Value.t
(** [element tag members] builds the encoding of an element pattern. *)
