(** A small XML parser and printer.

    Covers the subset needed to ingest DBLP-style bibliographic records
    (paper, Experiment 3): elements with attributes, text content, the five
    predefined entities plus numeric character references, comments,
    processing instructions, CDATA sections, and an optional XML
    declaration / DOCTYPE line (both skipped). No external DTD processing,
    no namespaces semantics (prefixes are kept verbatim). *)

type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

exception Parse_error of { pos : int; message : string }

val of_string : string -> t
(** Parses a document and returns its root element (prolog, comments and
    PIs around it are skipped). @raise Parse_error on malformed input. *)

val of_string_opt : string -> t option

val parse_many : string -> t list
(** A sequence of top-level elements (e.g. one record per line). *)

val to_string : t -> string
(** Prints with the five predefined entities escaped; parses back to an
    equal value. *)

val pp : Format.formatter -> t -> unit

val tag : t -> string option
val attr : string -> t -> string option
val children : t -> t list
val text_content : t -> string
(** Concatenated text of the whole subtree. *)

val equal : t -> t -> bool
(** Structural; attribute lists compared order-insensitively. *)
