(** JSON values, parser, and printer.

    Implemented from scratch (no JSON library ships in the sealed build
    environment); covers the full RFC 8259 value grammar: strings with
    escapes and [\uXXXX] (including surrogate pairs, encoded to UTF-8),
    numbers, booleans, null, arrays, and objects. Used to ingest the
    Twitter-style data set of the paper's Experiment 3. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of { pos : int; message : string }

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_string_opt : string -> t option

val parse_many : string -> t list
(** Newline/whitespace-separated JSON values (JSON-lines collections). *)

val to_string : ?pretty:bool -> t -> string
val pp : Format.formatter -> t -> unit

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object field lookup. [None] on non-objects and missing fields. *)

val to_list : t -> t list
(** Array elements; [[]] on non-arrays. *)

val equal : t -> t -> bool
(** Structural, with object fields compared order-insensitively. *)
