lib/textformats/json_nested.ml: Float Json List Nested Printf
