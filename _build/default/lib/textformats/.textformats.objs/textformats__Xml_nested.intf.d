lib/textformats/xml_nested.mli: Nested Xml
