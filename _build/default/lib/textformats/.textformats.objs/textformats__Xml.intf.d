lib/textformats/xml.mli: Format
