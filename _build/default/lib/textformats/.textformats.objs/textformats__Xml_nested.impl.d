lib/textformats/xml_nested.ml: List Nested String Xml
