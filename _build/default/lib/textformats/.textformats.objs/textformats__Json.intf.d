lib/textformats/json.mli: Format
