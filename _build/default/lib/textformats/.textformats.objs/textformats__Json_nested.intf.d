lib/textformats/json_nested.mli: Json Nested
