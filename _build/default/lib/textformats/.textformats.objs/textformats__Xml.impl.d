lib/textformats/xml.ml: Buffer Char Format List Printf String
