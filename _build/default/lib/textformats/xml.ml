type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

exception Parse_error of { pos : int; message : string }

let fail pos message = raise (Parse_error { pos; message })

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let skip_string st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st.pos (Printf.sprintf "expected %S" s)

let skip_until st s =
  let n = String.length s in
  let limit = String.length st.input - n in
  let rec loop () =
    if st.pos > limit then fail st.pos (Printf.sprintf "unterminated section, expected %S" s)
    else if looking_at st s then st.pos <- st.pos + n
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (match peek st with Some c when is_ws c -> true | _ -> false) do
    advance st
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> fail st.pos "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Decodes &amp; &lt; &gt; &quot; &apos; and numeric references. *)
let parse_reference st buf =
  skip_string st "&";
  if looking_at st "#" then begin
    advance st;
    let hex = looking_at st "x" in
    if hex then advance st;
    let start = st.pos in
    while
      match peek st with
      | Some ('0' .. '9') -> true
      | Some ('a' .. 'f' | 'A' .. 'F') when hex -> true
      | _ -> false
    do
      advance st
    done;
    let digits = String.sub st.input start (st.pos - start) in
    if digits = "" then fail st.pos "empty character reference";
    skip_string st ";";
    let cp = int_of_string ((if hex then "0x" else "") ^ digits) in
    (* reuse the JSON module's UTF-8 encoder semantics *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  end
  else begin
    let name = parse_name st in
    skip_string st ";";
    let c =
      match name with
      | "amp" -> '&'
      | "lt" -> '<'
      | "gt" -> '>'
      | "quot" -> '"'
      | "apos" -> '\''
      | _ -> fail st.pos (Printf.sprintf "unknown entity &%s;" name)
    in
    Buffer.add_char buf c
  end

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | _ -> fail st.pos "expected a quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' ->
      parse_reference st buf;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_attrs st =
  let rec loop acc =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
      let name = parse_name st in
      skip_ws st;
      skip_string st "=";
      skip_ws st;
      let value = parse_attr_value st in
      loop ((name, value) :: acc)
    | _ -> List.rev acc
  in
  loop []

let rec skip_misc st =
  skip_ws st;
  if looking_at st "<!--" then begin
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<?" then begin
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    (* skip to the matching '>' (internal subsets in brackets supported) *)
    let depth = ref 0 in
    let rec loop () =
      match peek st with
      | None -> fail st.pos "unterminated DOCTYPE"
      | Some '[' ->
        incr depth;
        advance st;
        loop ()
      | Some ']' ->
        decr depth;
        advance st;
        loop ()
      | Some '>' when !depth = 0 -> advance st
      | Some _ ->
        advance st;
        loop ()
    in
    loop ();
    skip_misc st
  end

let rec parse_element st =
  skip_string st "<";
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_ws st;
  if looking_at st "/>" then begin
    skip_string st "/>";
    Element { tag; attrs; children = [] }
  end
  else begin
    skip_string st ">";
    let children = parse_content st tag in
    Element { tag; attrs; children }
  end

and parse_content st tag =
  let out = ref [] in
  let buf = Buffer.create 32 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      (* keep only non-whitespace-only text *)
      if not (String.for_all is_ws s) then out := Text s :: !out
    end
  in
  let rec loop () =
    match peek st with
    | None -> fail st.pos (Printf.sprintf "unterminated element <%s>" tag)
    | Some '<' -> (
      match peek2 st with
      | Some '/' ->
        flush_text ();
        skip_string st "</";
        let closing = parse_name st in
        if closing <> tag then
          fail st.pos (Printf.sprintf "mismatched </%s>, expected </%s>" closing tag);
        skip_ws st;
        skip_string st ">"
      | Some '!' ->
        if looking_at st "<!--" then begin
          skip_until st "-->";
          loop ()
        end
        else if looking_at st "<![CDATA[" then begin
          skip_string st "<![CDATA[";
          let start = st.pos in
          skip_until st "]]>";
          Buffer.add_string buf (String.sub st.input start (st.pos - start - 3));
          loop ()
        end
        else fail st.pos "unexpected markup"
      | Some '?' ->
        skip_until st "?>";
        loop ()
      | _ ->
        flush_text ();
        out := parse_element st :: !out;
        loop ())
    | Some '&' ->
      parse_reference st buf;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  List.rev !out

let of_string s =
  let st = { input = s; pos = 0 } in
  skip_misc st;
  let e = parse_element st in
  skip_misc st;
  (match peek st with
  | Some c -> fail st.pos (Printf.sprintf "trailing input starting with '%c'" c)
  | None -> ());
  e

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let parse_many s =
  let st = { input = s; pos = 0 } in
  let rec loop acc =
    skip_misc st;
    match peek st with
    | None -> List.rev acc
    | Some _ -> loop (parse_element st :: acc)
  in
  loop []

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let to_string t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Text s -> escape buf s
    | Element { tag; attrs; children } ->
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape buf v;
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter go children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end
  in
  go t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let tag = function Element { tag; _ } -> Some tag | Text _ -> None

let attr name = function
  | Element { attrs; _ } -> List.assoc_opt name attrs
  | Text _ -> None

let children = function Element { children; _ } -> children | Text _ -> []

let text_content t =
  let buf = Buffer.create 32 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element { children; _ } -> List.iter go children
  in
  go t;
  Buffer.contents buf

let rec equal a b =
  match a, b with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    let sort l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    String.equal x.tag y.tag
    && sort x.attrs = sort y.attrs
    && List.length x.children = List.length y.children
    && List.for_all2 equal x.children y.children
  | (Text _ | Element _), _ -> false
