(** Mapping JSON into the nested-set data model.

    The paper ingests nested JSON tweets "directly mapped into our data
    model" (Sec. 5.1). The model has sets with atomic and set-valued
    members but no field labels, so we use the standard encoding:

    - a scalar becomes an atom ([null] → ["null"], booleans → ["true"] /
      ["false"], numbers in their shortest decimal form, strings as-is);
    - an array becomes the set of its mapped elements (order and
      multiplicity are absorbed by the set semantics, as in the paper's
      data model);
    - an object becomes the set of its field encodings, where field
      [k : v] becomes the two-element set [{k, map(v)}].

    Under this encoding a JSON "pattern" object translates to a nested-set
    query whose homomorphic containment matches records having at least
    the pattern's fields/elements — the natural JSON containment semantics
    (cf. Postgres [@>]). *)

val of_json : Json.t -> Nested.Value.t

val atom_of_scalar : Json.t -> string
(** The atom used for a scalar ([Null]/[Bool]/[Number]/[String]).
    @raise Invalid_argument on arrays and objects. *)

val field : string -> Nested.Value.t -> Nested.Value.t
(** [field k v] is the encoding [{k, v}] of one object field — a
    convenience for building queries. *)

val query : (string * Nested.Value.t) list -> Nested.Value.t
(** [query fields] builds the encoding of an object pattern. *)
