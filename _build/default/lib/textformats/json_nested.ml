let atom_of_scalar = function
  | Json.Null -> "null"
  | Json.Bool true -> "true"
  | Json.Bool false -> "false"
  | Json.Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  | Json.String s -> s
  | Json.Array _ | Json.Object _ ->
    invalid_arg "Json_nested.atom_of_scalar: not a scalar"

let rec of_json = function
  | (Json.Null | Json.Bool _ | Json.Number _ | Json.String _) as scalar ->
    Nested.Value.atom (atom_of_scalar scalar)
  | Json.Array elems -> Nested.Value.set (List.map of_json elems)
  | Json.Object fields ->
    Nested.Value.set
      (List.map
         (fun (k, v) -> Nested.Value.set [ Nested.Value.atom k; of_json v ])
         fields)

let field k v = Nested.Value.set [ Nested.Value.atom k; v ]

let query fields = Nested.Value.set (List.map (fun (k, v) -> field k v) fields)
