type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of { pos : int; message : string }

let fail pos message = raise (Parse_error { pos; message })

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st.pos (Printf.sprintf "expected '%c', found '%c'" c x)
  | None -> fail st.pos (Printf.sprintf "expected '%c', found end of input" c)

let expect_keyword st kw =
  let n = String.length kw in
  if st.pos + n <= String.length st.input && String.sub st.input st.pos n = kw then
    st.pos <- st.pos + n
  else fail st.pos (Printf.sprintf "expected '%s'" kw)

(* UTF-8 encoding of a code point. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex_digit st =
  match peek st with
  | Some c ->
    advance st;
    (match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail (st.pos - 1) "invalid hex digit")
  | None -> fail st.pos "truncated \\u escape"

let hex4 st =
  let a = hex_digit st in
  let b = hex_digit st in
  let c = hex_digit st in
  let d = hex_digit st in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st.pos "truncated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = hex4 st in
          if cp >= 0xd800 && cp <= 0xdbff then begin
            (* high surrogate: require a low surrogate *)
            expect st '\\';
            expect st 'u';
            let lo = hex4 st in
            if lo < 0xdc00 || lo > 0xdfff then fail st.pos "unpaired surrogate";
            add_utf8 buf (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
          end
          else if cp >= 0xdc00 && cp <= 0xdfff then fail st.pos "unpaired surrogate"
          else add_utf8 buf cp
        | c -> fail (st.pos - 1) (Printf.sprintf "invalid escape '\\%c'" c)));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st.pos "control character in string"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    while (match peek st with Some c when pred c -> true | _ -> false) do
      advance st
    done
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume_while (function '0' .. '9' -> true | _ -> false);
  (match peek st with
  | Some '.' ->
    advance st;
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let s = String.sub st.input start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail start (Printf.sprintf "invalid number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    (match peek st with
    | Some '}' ->
      advance st;
      Object []
    | _ ->
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st.pos "expected ',' or '}'"
      in
      Object (fields []))
  | Some '[' ->
    advance st;
    skip_ws st;
    (match peek st with
    | Some ']' ->
      advance st;
      Array []
    | _ ->
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st.pos "expected ',' or ']'"
      in
      Array (elems []))
  | Some '"' -> String (parse_string st)
  | Some 't' ->
    expect_keyword st "true";
    Bool true
  | Some 'f' ->
    expect_keyword st "false";
    Bool false
  | Some 'n' ->
    expect_keyword st "null";
    Null
  | Some ('-' | '0' .. '9') -> Number (parse_number st)
  | Some c -> fail st.pos (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { input = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | Some c -> fail st.pos (Printf.sprintf "trailing input starting with '%c'" c)
  | None -> ());
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let parse_many s =
  let st = { input = s; pos = 0 } in
  let rec loop acc =
    skip_ws st;
    match peek st with
    | None -> List.rev acc
    | Some _ -> loop (parse_value st :: acc)
  in
  loop []

(* --- printing --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s -> escape_string buf s
    | Array [] -> Buffer.add_string buf "[]"
    | Array elems ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          go (depth + 1) e)
        elems;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          escape_string buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) v)
        fields;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string ~pretty:true t)

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Array l -> l | _ -> []

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Number x, Number y -> x = y
  | String x, String y -> String.equal x y
  | Array x, Array y -> List.length x = List.length y && List.for_all2 equal x y
  | Object x, Object y ->
    let sort l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    let x = sort x and y = sort y in
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Number _ | String _ | Array _ | Object _), _ -> false
