(** Depth Bloom filters for nested sets (paper Sec. 3.3, after Koloniari &
    Pitoura).

    The original depth filters hash label {e paths}. Nested-set internal
    nodes are unlabelled, so a root-to-leaf path collapses to the pair
    (leaf label, depth); this filter hashes those pairs into a single bit
    array, plus each bare label for depth-agnostic tests. Compared with
    {!Breadth_bloom} this is one filter instead of one per level — less
    memory, coarser level separation: the natural ablation pair.

    - {!subset_hom}: bitwise subset of the full filters (label/depth pairs
      align because homomorphic embeddings preserve levels);
    - {!subset_homeo}: bitwise subset of the depth-agnostic parts only
      (necessarily weaker). *)

type t

val of_value : ?bits:int -> ?hashes:int -> ?max_levels:int -> Nested.Value.t -> t
(** Defaults: 1024 bits, 3 hashes, depths at or beyond 8 collapse together.
    @raise Invalid_argument on an atom. *)

val subset_hom : q:t -> s:t -> bool
val subset_homeo : q:t -> s:t -> bool

val encode : t -> string
val decode : string -> t
val memory_bytes : t -> int
