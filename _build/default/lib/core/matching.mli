(** Bipartite matching for sibling-injective (isomorphic) embeddings.

    The isomorphic semantics requires the internal children of a query node
    to map to pairwise-distinct internal children of the data node
    (Sec. 4.2). That is exactly a system of distinct representatives over
    the per-child admissible sets, decided here by Kuhn's augmenting-path
    algorithm — replacing the paper's mark-and-backtrack bookkeeping with an
    equivalent, polynomial formulation (see DESIGN.md). *)

val has_sdr : int array list -> bool
(** [has_sdr sets] holds when pairwise-distinct representatives can be
    chosen, one from each set. [has_sdr []] is [true]. *)
