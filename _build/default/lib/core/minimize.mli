(** Query minimization by sibling subsumption.

    Under homomorphic semantics a set-valued query child [c] is redundant
    whenever a sibling [d] is more specific, i.e. there is a homomorphism
    from [c] into [d]: any data node covering [d] then covers [c] by
    composition. Removing such children — the classic minimization of tree
    patterns, adapted to nested sets — shrinks the query without changing
    its answers under [Hom], [Homeo], and [Homeo_full] containment
    (a homomorphism composed with any of those embeddings is an embedding
    of the same kind).

    {e Not} sound for [Iso] (distinct children need distinct images) or for
    the counting joins; {!Engine} applies it only where valid
    ([config.minimize]). *)

val minimize : Nested.Value.t -> Nested.Value.t
(** Bottom-up removal of hom-subsumed siblings; mutually-subsuming
    (hom-equivalent) children keep their canonically-first representative.
    Idempotent. @raise Invalid_argument on an atom. *)

val is_minimal : Nested.Value.t -> bool
(** Whether {!minimize} would leave the value unchanged. *)
