(** Query semantics: join types, embedding semantics, and the evaluation
    mode they compile to.

    The paper presents one pair of algorithms and obtains the other joins
    (Sec. 4.1) and embedding semantics (Sec. 4.2) by swapping (i) how the
    candidate list of a query node is computed and (ii) the condition under
    which a candidate covers the node's subquery. {!mode_of} performs
    exactly that compilation; {!Top_down} and {!Bottom_up} are generic over
    the resulting {!mode}. *)

type join =
  | Containment  (** [q ⊆ s] — the paper's Equation 2 *)
  | Equality  (** [q = s] (Sec. 4.1); see note on precision in {!Engine} *)
  | Superset  (** [q ⊇ s] (Sec. 4.1) *)
  | Overlap of int  (** ε-overlap join, [ε ≥ 1] (Sec. 4.1) *)
  | Similarity of float
      (** relative-overlap join: every matched query node must share at
          least [⌈r·|ℓ(n)|⌉] leaf values with its image, [0 < r ≤ 1] — the
          "set similarity" relaxation the paper lists as future work
          (Sec. 6, item (4)) *)

type embedding =
  | Hom  (** homomorphic — the paper's default *)
  | Iso  (** isomorphic: sibling-injective *)
  | Homeo  (** homeomorphic: internal edges relax to ancestor–descendant *)
  | Homeo_full
      (** fully homeomorphic: leaf edges relax too, i.e. a query node's leaf
          values may occur anywhere in its image's subtree — the lifting of
          the restriction in the paper's footnote 4. Candidate lists are the
          ancestor closures of the leaf postings (via parent pointers).
          Containment join only. *)

(** How a candidate node [p] must relate to the matches of the query
    children. *)
type cover =
  | Exists_child
      (** every query child is covered by {e some} internal child of [p]
          (homomorphism) *)
  | Exists_distinct
      (** as above, by {e pairwise-distinct} children (isomorphism) *)
  | All_data_children
      (** every internal child of [p] covers {e some} query child
          (superset join: the embedding runs from data into query) *)

type edge =
  | Child  (** parent–child (hom, iso) *)
  | Descendant  (** ancestor–descendant (homeo) *)

type mode = {
  gen : Invfile.Inverted_file.t -> Query.node -> Invfile.Plist.t;
      (** candidate list of a query node (Alg. 2 line 8 / Alg. 4 line 11) *)
  cover : cover;
  edge : edge;
}

exception Unsupported of string

val mode_of : ?streamed:bool -> ?wildcards:bool -> join -> embedding -> mode
(** @raise Unsupported for combinations the algorithms do not define
    (currently [Superset]/[Equality] with [Homeo], and [Superset] with
    [Iso]). With [~streamed:true] (containment only) candidate lists are
    intersected directly from their encoded payloads via {!Plist_stream},
    bypassing the decoded-list cache — the paper's blocked-I/O option
    (Sec. 5.1, assumption (1)). With [~wildcards:true] (containment only;
    overrides [streamed]) a query leaf ending in ['*'] matches any atom
    with that prefix; its candidate list is the union of the matching
    atoms' lists. *)

val is_pattern : string -> bool
(** Whether an atom is a prefix pattern (ends in ['*']), as interpreted
    under [~wildcards:true]. *)

val candidates : mode -> Invfile.Inverted_file.t -> Query.node -> Invfile.Plist.t

val pp_join : Format.formatter -> join -> unit
val pp_embedding : Format.formatter -> embedding -> unit
