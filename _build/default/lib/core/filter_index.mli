(** Per-record Bloom prefilter (paper, Sec. 3.3).

    "We can build a Bloom filter [...], place the filter at the root of the
    tree and do a bitwise comparison between the filters of two trees
    before descending into their internal structure. If the comparison
    fails, we know that a containment is not possible."

    The index keeps one hierarchical filter per record in main memory; a
    query is prefiltered against all of them, yielding the record ids that
    {e might} contain it. Negative queries are typically rejected without a
    single inverted-file access. Filters can be persisted into the
    collection's store and reloaded. *)

type kind = Breadth | Depth

type t

val kind : t -> kind

val build :
  ?kind:kind -> ?bits:int -> ?hashes:int -> ?max_levels:int ->
  Invfile.Inverted_file.t -> t
(** Scans the stored records and builds their filters. Defaults: [Breadth],
    256 bits (per level for [Breadth], total ×4 for [Depth]), 3 hashes, 8
    levels. *)

val candidate_records :
  t -> join:Semantics.join -> embedding:Semantics.embedding ->
  Nested.Value.t -> int list option
(** Record ids (ascending) that pass the filter test, or [None] when the
    join/embedding combination admits no sound Bloom test (ε-overlap; any
    unsupported combination) — meaning "no pruning, keep all". Containment
    and equality test query-into-record; superset tests record-into-query. *)

val memory_bytes : t -> int
val record_count : t -> int

(** {1 Persistence} *)

val save : t -> Invfile.Inverted_file.t -> unit
(** Stores the filters under reserved keys of the collection's store. *)

val load : Invfile.Inverted_file.t -> t option
(** [None] if no filters were saved. *)
