(** The top-down containment algorithm (paper, Sec. 3.1, Alg. 1 and 2).

    Starts at the outermost nesting level of the query, extending lists of
    [(head, frontier)] paths through successive [▷◁_IF] joins and
    intersecting the surviving head sets.

    Two variants are provided.

    {b [run_paper]} is the algorithm exactly as published: the results of
    sibling subqueries are intersected at the granularity of {e heads}
    (Alg. 2, line 11). For query nodes at depth ≥ 1 with two or more
    internal children this admits embeddings in which the children are
    routed through {e different} matches of their parent — a relaxation of
    homomorphism we call {e path containment} (every root-to-node path of
    the query embeds, with branching consistency enforced at the root
    only). [run_paper q ⊇ run q] always holds, with equality whenever no
    query node below the root has two or more internal children. See
    DESIGN.md ("top-down variants") for the worked counterexample.

    {b [run]} is the strict variant: sibling results are intersected per
    {e path}, so a surviving match covers all of its node's children
    simultaneously — true homomorphic (/iso-/homeo-morphic) containment,
    agreeing with {!Bottom_up} and the naive oracle.

    Both run in O(|q| · |S|) as in the paper's analysis. *)

type order =
  | Query_order  (** children in canonical query order (default) *)
  | Selectivity
      (** children by ascending candidate-list size, failing fast on the
          most selective subquery — the paper's Sec. 6 remark on list
          intersections under skew *)

val run :
  Semantics.mode -> ?root_filter:Intset.t -> ?order:order ->
  Invfile.Inverted_file.t -> Query.t -> Intset.t
(** Strict variant. Node ids at which the query root embeds, ascending.
    [root_filter] restricts the candidates of the query {e root} to the
    given sorted id set — used by {!Engine} to anchor Equation-2 queries at
    record roots (and at Bloom-prefilter survivors), which prunes every
    subsequent join. *)

val run_paper :
  Semantics.mode -> ?root_filter:Intset.t -> Invfile.Inverted_file.t -> Query.t ->
  Intset.t
(** The algorithm as published.
    @raise Semantics.Unsupported for covers other than [Exists_child]
    (the paper defines the top-down algorithm for containment-style
    covers only). *)
