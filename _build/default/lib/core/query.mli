(** Prepared queries.

    A query is a nested set value compiled into the shape the algorithms
    traverse: per node, its distinct leaf labels [ℓ(n)] and its internal
    children [nodes(n)] (paper, Sec. 3). *)

type node = {
  leaves : string array;  (** sorted, distinct *)
  children : node list;
  size : int;  (** internal nodes in this subtree, including the node *)
}

type t = node

val of_value : Nested.Value.t -> t
(** @raise Invalid_argument if the value is an atom. *)

val to_value : t -> Nested.Value.t

val leaf_label_count : node -> int
(** [|ℓ(n)|] — the number of distinct leaf labels of the node. *)

val child_count : node -> int
val internal_count : t -> int

val has_leafless_node : t -> bool
(** True when some node has no leaf children — the case the paper's base
    algorithms exclude and our node-table extension supports (Sec. 3,
    comment (2)). *)

val depth : t -> int
val pp : Format.formatter -> t -> unit
