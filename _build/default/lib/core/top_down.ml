module P = Invfile.Plist

let join_for (mode : Semantics.mode) =
  match mode.Semantics.edge with
  | Semantics.Child -> P.join_child
  | Semantics.Descendant -> P.join_descendant

let covers_for (mode : Semantics.mode) =
  match mode.Semantics.edge with
  | Semantics.Child -> P.covers_child
  | Semantics.Descendant -> P.covers_descendant

(* --- the algorithm as published (Alg. 1 and 2) --- *)

let rec interior_paper mode inv children (paths : P.paths) : Intset.t =
  if children = [] then P.heads paths (* Alg. 2, lines 1-2 *)
  else if Array.length paths = 0 then Intset.empty (* lines 3-4 *)
  else begin
    let roots = ref (P.heads paths) (* line 6 *) in
    List.iter
      (fun (n : Query.node) ->
        let candidates = Semantics.candidates mode inv n (* line 8 *) in
        let paths' = join_for mode paths candidates (* line 9 *) in
        let roots' = interior_paper mode inv n.Query.children paths' (* line 10 *) in
        roots := Intset.inter !roots roots' (* line 11 *))
      children;
    !roots
  end

let root_candidates mode ?root_filter inv q =
  let c = Semantics.candidates mode inv q in
  match root_filter with None -> c | Some ids -> P.restrict c ids

let run_paper mode ?root_filter inv (q : Query.t) =
  (match mode.Semantics.cover with
  | Semantics.Exists_child -> ()
  | Semantics.Exists_distinct | Semantics.All_data_children ->
    raise
      (Semantics.Unsupported
         "top-down (paper variant) is defined for containment-style covers only"));
  let p0 = P.paths_of_candidates (root_candidates mode ?root_filter inv q) in
  interior_paper mode inv q.Query.children p0

(* --- strict variant ---

   Sibling results are intersected per path rather than per head: a path
   (h, m) survives a query child only if m itself (not merely some other
   match under h) has a child/descendant covering it. *)

let filter_paths pred (paths : P.paths) : P.paths =
  Array.of_list (List.filter pred (Array.to_list paths))

(* Groups surviving paths by head into idsets of their matched nodes. *)
let group_heads (paths : P.paths) : (int, P.idset) Hashtbl.t =
  let acc : (int, Invfile.Posting.t list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun { P.head; cur } ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt acc head) in
      Hashtbl.replace acc head (cur :: prev))
    paths;
  let out = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter
    (fun head rev_postings ->
      (* paths are sorted by (head, node), so reversing restores node order *)
      Hashtbl.replace out head (P.idset_of_postings (Array.of_list (List.rev rev_postings))))
    acc;
  out

type order = Query_order | Selectivity

(* Child processing order: [Selectivity] evaluates every child's candidate
   list up front and visits the smallest first, so unsatisfiable children
   empty the path set as early as possible (cf. the paper's Sec. 6 remark
   on list intersections and skew). *)
let ordered_children order mode inv (n : Query.node) =
  match order with
  | Query_order -> List.map (fun c -> (c, None)) n.Query.children
  | Selectivity ->
    n.Query.children
    |> List.map (fun c ->
           let cand = Semantics.candidates mode inv c in
           (c, Some cand))
    |> List.sort (fun (_, a) (_, b) ->
           match a, b with
           | Some a, Some b -> Int.compare (P.length a) (P.length b)
           | _ -> 0)

(* Keeps the paths of [paths] whose matched node covers the whole subquery
   below query node [n]; [paths] must already be candidate-matched at [n]. *)
let rec solve_children order mode inv (n : Query.node) (paths : P.paths) : P.paths =
  if Array.length paths = 0 then paths
  else
    match mode.Semantics.cover with
    | Semantics.Exists_child ->
      List.fold_left
        (fun paths (c, cand) ->
          if Array.length paths = 0 then paths
          else begin
            let ok = solve_child order mode inv c cand paths in
            let by_head = group_heads ok in
            filter_paths
              (fun { P.head; cur } ->
                match Hashtbl.find_opt by_head head with
                | None -> false
                | Some h -> covers_for mode cur h)
              paths
          end)
        paths
        (ordered_children order mode inv n)
    | Semantics.Exists_distinct ->
      let per_child =
        List.map
          (fun c -> group_heads (solve_child order mode inv c None paths))
          n.Query.children
      in
      filter_paths
        (fun { P.head; cur } ->
          let admissible tbl =
            match Hashtbl.find_opt tbl head with
            | None -> [||]
            | Some h ->
              Array.to_list cur.Invfile.Posting.children
              |> List.filter (fun d -> P.idset_mem h d)
              |> Array.of_list
          in
          Matching.has_sdr (List.map admissible per_child))
        paths
    | Semantics.All_data_children ->
      (* Per head, the union of nodes covered by some query child. *)
      let unions : (int, int list) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun c ->
          Array.iter
            (fun { P.head; cur } ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt unions head) in
              Hashtbl.replace unions head (cur.Invfile.Posting.node :: prev))
            (solve_child order mode inv c None paths))
        n.Query.children;
      let union_sets = Hashtbl.create (Hashtbl.length unions) in
      Hashtbl.iter (fun h l -> Hashtbl.replace union_sets h (Intset.of_list l)) unions;
      filter_paths
        (fun { P.head; cur } ->
          let covered =
            match Hashtbl.find_opt union_sets head with
            | None -> Intset.empty
            | Some s -> s
          in
          Array.for_all (Intset.mem covered) cur.Invfile.Posting.children)
        paths

(* Matches query child [c] against the frontier of [paths] and solves its
   subquery, returning the surviving extended paths. [cand] reuses the list
   computed by the selectivity ordering. *)
and solve_child order mode inv (c : Query.node) cand (paths : P.paths) : P.paths =
  let candidates =
    match cand with Some l -> l | None -> Semantics.candidates mode inv c
  in
  let extended = join_for mode paths candidates in
  solve_children order mode inv c extended

let run mode ?root_filter ?(order = Query_order) inv (q : Query.t) =
  let p0 = P.paths_of_candidates (root_candidates mode ?root_filter inv q) in
  P.heads (solve_children order mode inv q p0)
