(** The naive baseline: pairwise embedding checks over a full scan.

    "A naive solution to computing containment of q in S is to apply an
    off-the-shelf subtree homomorphism algorithm to each pairing (q, s), for
    s ∈ S" (paper, Sec. 3, comment (1)). Every record is fetched from the
    store, re-encoded, and checked with {!Embed} — the access pattern the
    inverted-file algorithms are designed to beat. *)

val scan :
  ?wildcards:bool ->
  ?join:Semantics.join ->
  ?embedding:Semantics.embedding ->
  ?scope:[ `Roots | `Anywhere ] ->
  Invfile.Inverted_file.t ->
  Query.t ->
  Intset.t
(** Defaults: [Containment], [Hom], [`Roots]. With [`Roots] the result
    contains root node ids of matching records (Equation 2); with
    [`Anywhere], every matching node id. *)

val matching_records :
  ?join:Semantics.join ->
  ?embedding:Semantics.embedding ->
  Invfile.Inverted_file.t ->
  Query.t ->
  int list
(** Record ids whose value contains the query (root-to-root), ascending. *)
