type node = {
  leaves : string array;
  children : node list;
  size : int;
}

type t = node

let rec of_set v =
  let leaves = Array.of_list (Nested.Value.leaves v) in
  let children = List.map of_set (Nested.Value.subsets v) in
  let size = 1 + List.fold_left (fun acc c -> acc + c.size) 0 children in
  { leaves; children; size }

let of_value v =
  if Nested.Value.is_atom v then invalid_arg "Query.of_value: query must be a set";
  of_set v

let rec to_value n =
  Nested.Value.set
    (Array.to_list (Array.map Nested.Value.atom n.leaves)
    @ List.map to_value n.children)

let leaf_label_count n = Array.length n.leaves
let child_count n = List.length n.children
let internal_count t = t.size

let rec has_leafless_node n =
  Array.length n.leaves = 0 || List.exists has_leafless_node n.children

let rec depth n = 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 n.children

let pp ppf t = Nested.Value.pp ppf (to_value t)
