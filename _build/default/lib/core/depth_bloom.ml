type t = {
  keyed : Bloom.t;  (* (label, depth) pairs *)
  anywhere : Bloom.t;  (* bare labels *)
}

let of_value ?(bits = 1024) ?(hashes = 3) ?(max_levels = 8) v =
  if Nested.Value.is_atom v then invalid_arg "Depth_bloom.of_value: atom";
  let keyed = Bloom.create ~hashes ~bits () in
  let anywhere = Bloom.create ~hashes ~bits () in
  let rec walk depth v =
    let level = min depth (max_levels - 1) in
    List.iter
      (fun e ->
        match (e : Nested.Value.t) with
        | Nested.Value.Atom a ->
          Bloom.add keyed (string_of_int level ^ ":" ^ a);
          Bloom.add anywhere a
        | Nested.Value.Set _ -> walk (depth + 1) e)
      (Nested.Value.elements v)
  in
  walk 0 v;
  { keyed; anywhere }

let subset_hom ~q ~s = Bloom.subset q.keyed s.keyed

let subset_homeo ~q ~s = Bloom.subset q.anywhere s.anywhere

let encode t =
  let w = Storage.Codec.writer () in
  Storage.Codec.write_string w (Bloom.encode t.keyed);
  Storage.Codec.write_string w (Bloom.encode t.anywhere);
  Storage.Codec.contents w

let decode s =
  let r = Storage.Codec.reader s in
  let keyed = Bloom.decode (Storage.Codec.read_string r) in
  let anywhere = Bloom.decode (Storage.Codec.read_string r) in
  { keyed; anywhere }

let memory_bytes t = (Bloom.bits t.keyed + Bloom.bits t.anywhere) / 8
