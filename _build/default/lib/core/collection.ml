type backend = Mem | Hash of string | Btree of string | Log of string

let store_of_backend ?(buckets = 65536) = function
  | Mem -> Storage.Mem_store.create ()
  | Hash path -> Storage.Hash_store.create ~buckets path
  | Btree path -> Storage.Btree_store.create path
  | Log path -> Storage.Log_store.create path

let of_values ?(backend = Mem) ?store_values ?node_table ?codec ?record_format
    values =
  let store = store_of_backend backend in
  let builder =
    Invfile.Builder.create ?store_values ?node_table ?codec ?record_format store
  in
  List.iter (fun v -> ignore (Invfile.Builder.add_value builder v)) values;
  Invfile.Builder.finish builder

let of_strings ?backend strings =
  of_values ?backend (List.map Nested.Syntax.of_string strings)

let of_file ?backend path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  of_values ?backend (Nested.Syntax.parse_many contents)

let with_static_cache inv ~budget =
  Invfile.Inverted_file.attach_cache inv
    (Invfile.Cache.create Invfile.Cache.Static ~capacity:budget)

let paper_example () =
  of_strings
    [
      "{London, UK, {UK, {A, B, C, car, motorbike}}, {UK, {A, motorbike}}}";
      "{Boston, USA, {USA, VA, {A, B, car}}, {UK, {A, motorbike}}}";
    ]

let paper_example_query = Nested.Syntax.of_string "{USA, {UK, {A, motorbike}}}"
