(** Plain Bloom filters (paper, Sec. 3.3; Bloom 1970).

    Compact probabilistic set representations supporting membership and —
    crucial for containment prefiltering — the bitwise subset test: if
    [subset f g] is false, no set represented by [f] is contained in a set
    represented by [g]. False positives are possible, false negatives are
    not. *)

type t

val create : ?hashes:int -> bits:int -> unit -> t
(** [bits] is rounded up to a multiple of 8; [hashes] defaults to 4. *)

val optimal : expected:int -> fp_rate:float -> t
(** Sizes the filter for [expected] insertions at the given target false-
    positive rate (standard [m = -n ln p / (ln 2)²], [k = m/n ln 2]). *)

val bits : t -> int
val hash_count : t -> int

val add : t -> string -> unit
val mem : t -> string -> bool
(** No false negatives; false positives at the configured rate. *)

val subset : t -> t -> bool
(** [subset a b] — bitwise [a AND b = a]. Filters must have identical
    geometry. @raise Invalid_argument otherwise. *)

val union : t -> t -> t
(** Bitwise OR, same geometry required. *)

val copy : t -> t
val fill_ratio : t -> float
(** Fraction of set bits. *)

val encode : t -> string
val decode : string -> t
(** @raise Storage.Codec.Corrupt on malformed input. *)
