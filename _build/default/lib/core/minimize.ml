module V = Nested.Value

(* c is subsumed by d when matching d implies matching c: hom(c → d). *)
let subsumed_by c d = Embed.contains Semantics.Hom ~q:c ~s:d

let rec minimize v =
  if V.is_atom v then invalid_arg "Minimize.minimize: query must be a set";
  let leaves = List.filter V.is_atom (V.elements v) in
  let children = List.map minimize (V.subsets v) in
  (* children are canonical and sorted; keep child i unless some other
     surviving child strictly subsumes it (or an earlier one is
     hom-equivalent to it) *)
  let arr = Array.of_list children in
  let n = Array.length arr in
  let dropped = Array.make n false in
  for i = 0 to n - 1 do
    let redundant = ref false in
    for j = 0 to n - 1 do
      if (not !redundant) && j <> i && not dropped.(j) then
        if subsumed_by arr.(i) arr.(j) then
          if not (subsumed_by arr.(j) arr.(i)) then redundant := true
          else if j < i then redundant := true (* hom-equivalent: keep first *)
    done;
    dropped.(i) <- !redundant
  done;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if not dropped.(i) then kept := arr.(i) :: !kept
  done;
  V.set (leaves @ !kept)

let is_minimal v = V.equal v (minimize v)
