lib/core/naive.mli: Intset Invfile Query Semantics
