lib/core/breadth_bloom.ml: Array Bloom List Nested Storage
