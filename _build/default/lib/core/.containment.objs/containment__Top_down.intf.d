lib/core/top_down.mli: Intset Invfile Query Semantics
