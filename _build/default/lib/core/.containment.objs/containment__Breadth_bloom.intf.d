lib/core/breadth_bloom.mli: Nested
