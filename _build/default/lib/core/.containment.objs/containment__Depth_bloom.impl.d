lib/core/depth_bloom.ml: Bloom List Nested Storage
