lib/core/collection.ml: Invfile List Nested Storage
