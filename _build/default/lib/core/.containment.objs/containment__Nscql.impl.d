lib/core/nscql.ml: Embed Engine Format Invfile List Nested Option Printf Semantics String
