lib/core/intset.ml: Array Int List
