lib/core/bottom_up.mli: Intset Invfile Query Semantics
