lib/core/naive.ml: Array Embed Intset Invfile List Nested Semantics
