lib/core/bloom.mli:
