lib/core/nscql.mli: Embed Engine Format Invfile Nested Result Semantics
