lib/core/bloom.ml: Bytes Char Float Hashtbl Storage
