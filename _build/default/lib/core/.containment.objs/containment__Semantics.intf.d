lib/core/semantics.mli: Format Invfile Query
