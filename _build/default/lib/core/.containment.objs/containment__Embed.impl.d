lib/core/embed.ml: Array Float Hashtbl List Matching Nested Printf Query Semantics String
