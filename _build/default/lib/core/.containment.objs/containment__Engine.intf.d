lib/core/engine.mli: Embed Filter_index Format Intset Invfile Nested Query Semantics Top_down
