lib/core/filter_index.mli: Invfile Nested Semantics
