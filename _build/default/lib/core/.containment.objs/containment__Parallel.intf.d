lib/core/parallel.mli: Engine Invfile Nested
