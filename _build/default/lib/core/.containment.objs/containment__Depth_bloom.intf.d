lib/core/depth_bloom.mli: Nested
