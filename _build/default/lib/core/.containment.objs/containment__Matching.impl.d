lib/core/matching.ml: Array Hashtbl
