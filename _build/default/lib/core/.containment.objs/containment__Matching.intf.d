lib/core/matching.mli:
