lib/core/bottom_up.ml: Array Fun Invfile List Matching Option Query Semantics Stack Storage String
