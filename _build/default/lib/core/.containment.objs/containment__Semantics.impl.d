lib/core/semantics.ml: Array Float Format Hashtbl Int Invfile List Query String
