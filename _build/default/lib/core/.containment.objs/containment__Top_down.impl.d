lib/core/top_down.ml: Array Hashtbl Int Intset Invfile List Matching Option Query Semantics
