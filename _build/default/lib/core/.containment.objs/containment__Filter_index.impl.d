lib/core/filter_index.ml: Array Breadth_bloom Depth_bloom Invfile Nested Option Semantics Storage
