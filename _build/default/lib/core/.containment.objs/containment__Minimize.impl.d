lib/core/minimize.ml: Array Embed List Nested Semantics
