lib/core/collection.mli: Invfile Nested Storage
