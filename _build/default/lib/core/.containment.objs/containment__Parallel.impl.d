lib/core/parallel.ml: Domain Engine Fun Invfile List Unix
