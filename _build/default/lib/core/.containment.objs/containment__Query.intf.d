lib/core/query.mli: Format Nested
