lib/core/intset.mli:
