lib/core/embed.mli: Intset Nested Query Semantics
