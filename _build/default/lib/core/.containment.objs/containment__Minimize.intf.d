lib/core/minimize.mli: Nested
