lib/core/query.ml: Array List Nested
