lib/core/engine.ml: Array Bottom_up Embed Filter_index Float Format Int Intset Invfile List Logs Minimize Naive Nested Option Printf Query Semantics Storage String Top_down Unix
