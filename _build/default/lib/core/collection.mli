(** Convenience constructors for indexed collections.

    Wires a storage backend, the inverted-file builder, and optional
    optimizer state (cache, Bloom filters) together — the setup code of
    every example, test, and benchmark. *)

type backend =
  | Mem  (** in-memory hash table *)
  | Hash of string  (** on-disk hash store at the given path (Sec. 5.1) *)
  | Btree of string  (** on-disk B+tree store at the given path *)
  | Log of string  (** crash-safe append-only log store at the given path *)

val store_of_backend : ?buckets:int -> backend -> Storage.Kv.t

val of_values :
  ?backend:backend -> ?store_values:bool -> ?node_table:bool ->
  ?codec:Invfile.Plist.codec -> ?record_format:[ `Syntax | `Binary ] ->
  Nested.Value.t list -> Invfile.Inverted_file.t
(** Builds an indexed collection from record values. Default backend
    [Mem]. *)

val of_strings : ?backend:backend -> string list -> Invfile.Inverted_file.t
(** Parses each string with {!Nested.Syntax}. *)

val of_file : ?backend:backend -> string -> Invfile.Inverted_file.t
(** Reads whitespace-separated values from a file (e.g. one per line). *)

val with_static_cache : Invfile.Inverted_file.t -> budget:int -> unit
(** Attaches the paper's static most-frequent-lists cache (Sec. 3.3;
    budget 250 in the paper's experiments). *)

val paper_example : unit -> Invfile.Inverted_file.t
(** The two-record collection of Table 1 (Sue and Tim), in memory — handy
    for docs and tests. *)

val paper_example_query : Nested.Value.t
(** The Section 1 query [{USA, {UK, {A, motorbike}}}]. *)
