(** Breadth Bloom filters for nested sets (paper Sec. 3.3, after Koloniari &
    Pitoura's multi-level filters for XML).

    One Bloom filter per nesting level, holding the leaf labels whose parent
    sits at that depth (levels at or beyond [max_levels] share the last
    filter, which keeps the test sound). Containment prefiltering:

    - homomorphic embeddings preserve levels, so [q ⊆ s] requires
      [q.(i) ⊆ s.(i)] bitwise at every level ({!subset_hom});
    - homeomorphic embeddings may push leaves deeper, so level [i] of the
      query is tested against the union of levels [≥ i] ({!subset_homeo}).

    A failed test proves non-containment; a passed test means "maybe". *)

type t

val of_value :
  ?bits_per_level:int -> ?hashes:int -> ?max_levels:int -> Nested.Value.t -> t
(** Defaults: 256 bits per level, 3 hashes, 8 levels. All filters compared
    against each other must be built with the same parameters.
    @raise Invalid_argument on an atom. *)

val levels : t -> int
(** Number of populated levels (= min (nesting depth, max_levels)). *)

val subset_hom : q:t -> s:t -> bool
val subset_homeo : q:t -> s:t -> bool

val encode : t -> string
val decode : string -> t

val memory_bytes : t -> int
(** Approximate in-memory footprint of the bit arrays. *)
