type kind = Breadth | Depth

type filters =
  | B of Breadth_bloom.t array
  | D of Depth_bloom.t array

type params = { bits : int; hashes : int; max_levels : int }

type t = { filters : filters; params : params }

let kind t = match t.filters with B _ -> Breadth | D _ -> Depth

let build ?(kind = Breadth) ?(bits = 256) ?(hashes = 3) ?(max_levels = 8) inv =
  let n = Invfile.Inverted_file.record_count inv in
  let params = { bits; hashes; max_levels } in
  (* tombstoned records keep a slot (record ids are positional) but get the
     empty set's filter, which rejects every non-trivial query *)
  let value_of i =
    Option.value ~default:Nested.Value.empty
      (Invfile.Inverted_file.record_value_opt inv i)
  in
  let filters =
    match kind with
    | Breadth ->
      B
        (Array.init n (fun i ->
             Breadth_bloom.of_value ~bits_per_level:bits ~hashes ~max_levels
               (value_of i)))
    | Depth ->
      D
        (Array.init n (fun i ->
             Depth_bloom.of_value ~bits:(bits * 4) ~hashes ~max_levels (value_of i)))
  in
  { filters; params }

let query_filter t value =
  let { bits; hashes; max_levels } = t.params in
  match t.filters with
  | B _ -> `B (Breadth_bloom.of_value ~bits_per_level:bits ~hashes ~max_levels value)
  | D _ -> `D (Depth_bloom.of_value ~bits:(bits * 4) ~hashes ~max_levels value)

let candidate_records t ~join ~embedding value =
  let test =
    (* Returns a per-record test, or None when Bloom cannot prune soundly. *)
    match join with
    | Semantics.Overlap _ | Semantics.Similarity _ -> None
    | Semantics.Containment | Semantics.Equality -> (
      (* iso implies hom, so the hom test is sound for iso too *)
      let hom_like =
        match embedding with
        | Semantics.Homeo | Semantics.Homeo_full -> `Homeo
        | Semantics.Hom | Semantics.Iso -> `Hom
      in
      match query_filter t value, t.filters with
      | `B qf, B fs ->
        Some
          (fun i ->
            match hom_like with
            | `Hom -> Breadth_bloom.subset_hom ~q:qf ~s:fs.(i)
            | `Homeo -> Breadth_bloom.subset_homeo ~q:qf ~s:fs.(i))
      | `D qf, D fs ->
        Some
          (fun i ->
            match hom_like with
            | `Hom -> Depth_bloom.subset_hom ~q:qf ~s:fs.(i)
            | `Homeo -> Depth_bloom.subset_homeo ~q:qf ~s:fs.(i))
      | _ -> assert false)
    | Semantics.Superset -> (
      match embedding with
      | Semantics.Homeo | Semantics.Homeo_full -> None
      | Semantics.Hom | Semantics.Iso -> (
        (* q ⊇ s: the record must be contained in the query. *)
        match query_filter t value, t.filters with
        | `B qf, B fs -> Some (fun i -> Breadth_bloom.subset_hom ~q:fs.(i) ~s:qf)
        | `D qf, D fs -> Some (fun i -> Depth_bloom.subset_hom ~q:fs.(i) ~s:qf)
        | _ -> assert false))
  in
  match test with
  | None -> None
  | Some test ->
    let n = match t.filters with B fs -> Array.length fs | D fs -> Array.length fs in
    let out = ref [] in
    for i = n - 1 downto 0 do
      if test i then out := i :: !out
    done;
    Some !out

let memory_bytes t =
  match t.filters with
  | B fs -> Array.fold_left (fun acc f -> acc + Breadth_bloom.memory_bytes f) 0 fs
  | D fs -> Array.fold_left (fun acc f -> acc + Depth_bloom.memory_bytes f) 0 fs

let record_count t =
  match t.filters with B fs -> Array.length fs | D fs -> Array.length fs

(* --- persistence --- *)

let meta_key = "m:filters"
let filter_key i = "f:" ^ string_of_int i

let save t inv =
  let store = Invfile.Inverted_file.store inv in
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w (match kind t with Breadth -> 0 | Depth -> 1);
  Storage.Codec.write_varint w t.params.bits;
  Storage.Codec.write_varint w t.params.hashes;
  Storage.Codec.write_varint w t.params.max_levels;
  Storage.Codec.write_varint w (record_count t);
  store.Storage.Kv.put meta_key (Storage.Codec.contents w);
  (match t.filters with
  | B fs ->
    Array.iteri (fun i f -> store.Storage.Kv.put (filter_key i) (Breadth_bloom.encode f)) fs
  | D fs ->
    Array.iteri (fun i f -> store.Storage.Kv.put (filter_key i) (Depth_bloom.encode f)) fs);
  store.Storage.Kv.sync ()

let load inv =
  let store = Invfile.Inverted_file.store inv in
  match store.Storage.Kv.get meta_key with
  | None -> None
  | Some meta ->
    let r = Storage.Codec.reader meta in
    let k = Storage.Codec.read_varint r in
    let bits = Storage.Codec.read_varint r in
    let hashes = Storage.Codec.read_varint r in
    let max_levels = Storage.Codec.read_varint r in
    let n = Storage.Codec.read_varint r in
    let payload i = Storage.Kv.find_exn store (filter_key i) in
    let filters =
      match k with
      | 0 -> B (Array.init n (fun i -> Breadth_bloom.decode (payload i)))
      | 1 -> D (Array.init n (fun i -> Depth_bloom.decode (payload i)))
      | _ -> raise (Storage.Codec.Corrupt "Filter_index.load: bad kind")
    in
    Some { filters; params = { bits; hashes; max_levels } }
