type t = Bloom.t array

let of_value ?(bits_per_level = 256) ?(hashes = 3) ?(max_levels = 8) v =
  if Nested.Value.is_atom v then invalid_arg "Breadth_bloom.of_value: atom";
  let d = min max_levels (Nested.Value.depth v) in
  let filters =
    Array.init (max 1 d) (fun _ -> Bloom.create ~hashes ~bits:bits_per_level ())
  in
  let level_of depth = min depth (Array.length filters - 1) in
  (* [depth] is the depth of the internal node owning the leaves. *)
  let rec walk depth v =
    List.iter
      (fun e ->
        match (e : Nested.Value.t) with
        | Nested.Value.Atom a -> Bloom.add filters.(level_of depth) a
        | Nested.Value.Set _ -> walk (depth + 1) e)
      (Nested.Value.elements v)
  in
  walk 0 v;
  filters

let levels = Array.length

let subset_hom ~q ~s =
  Array.length q <= Array.length s
  &&
  let rec go i = i >= Array.length q || (Bloom.subset q.(i) s.(i) && go (i + 1)) in
  go 0

let subset_homeo ~q ~s =
  Array.length q <= Array.length s
  &&
  (* suffix unions of s, deepest first *)
  let n = Array.length s in
  let suffix = Array.make n s.(n - 1) in
  for i = n - 2 downto 0 do
    suffix.(i) <- Bloom.union s.(i) suffix.(i + 1)
  done;
  let rec go i = i >= Array.length q || (Bloom.subset q.(i) suffix.(i) && go (i + 1)) in
  go 0

let encode t =
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w (Array.length t);
  Array.iter (fun f -> Storage.Codec.write_string w (Bloom.encode f)) t;
  Storage.Codec.contents w

let decode s =
  let r = Storage.Codec.reader s in
  let n = Storage.Codec.read_varint r in
  Array.init n (fun _ -> Bloom.decode (Storage.Codec.read_string r))

let memory_bytes t =
  Array.fold_left (fun acc f -> acc + (Bloom.bits f / 8)) 0 t
