type t = int array

let empty = [||]
let is_empty s = Array.length s = 0
let of_list l = Array.of_list (List.sort_uniq Int.compare l)
let to_list = Array.to_list
let cardinal = Array.length

let mem s x =
  let rec bsearch lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if s.(mid) = x then true
      else if s.(mid) < x then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 (Array.length s)

let inter a b =
  let out = ref [] and i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la && !j < lb do
    let c = Int.compare a.(!i) b.(!j) in
    if c = 0 then begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

let union a b =
  let out = ref [] and i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la && !j < lb do
    let c = Int.compare a.(!i) b.(!j) in
    if c <= 0 then begin
      out := a.(!i) :: !out;
      if c = 0 then incr j;
      incr i
    end
    else begin
      out := b.(!j) :: !out;
      incr j
    end
  done;
  while !i < la do
    out := a.(!i) :: !out;
    incr i
  done;
  while !j < lb do
    out := b.(!j) :: !out;
    incr j
  done;
  Array.of_list (List.rev !out)

let subset a b = Array.for_all (mem b) a
