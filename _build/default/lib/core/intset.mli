(** Sorted integer-array sets (node-id sets). *)

type t = int array
(** Strictly increasing. *)

val empty : t
val is_empty : t -> bool
val of_list : int list -> t
(** Sorts and deduplicates. *)

val mem : t -> int -> bool
val inter : t -> t -> t
val union : t -> t -> t
val subset : t -> t -> bool
val to_list : t -> int list
val cardinal : t -> int
