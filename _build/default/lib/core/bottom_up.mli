(** The bottom-up containment algorithm (paper, Sec. 3.2, Alg. 3 and 4).

    Processes the query depth-first with an explicit stack of marker-
    delimited head sets: the subtree under a query node is evaluated before
    the node itself, and a candidate node is kept when it covers every
    child's head set (the [H(·)] operator). Generic over {!Semantics.mode},
    which supplies the candidate generator, the cover condition (hom / iso /
    superset) and the edge semantics (child / descendant).

    Worst case O(|q| · |S|), matching the paper's analysis. *)

val run :
  Semantics.mode -> ?root_filter:Intset.t -> ?spill_to:string ->
  Invfile.Inverted_file.t -> Query.t -> Intset.t
(** All node ids of the collection at which the query root embeds, in
    ascending order ([Engine] narrows these to record roots for the
    Equation-2 semantics). [root_filter] restricts the query root's
    candidate list to the given sorted id set, pruning the final head
    computation (see {!Top_down.run}). [spill_to] runs the stack through
    {!Storage.Ext_stack} backed by the given file — the paper's STXXL
    option (Sec. 5.1, assumption (2)) for queries whose intermediate head
    sets exceed main memory. *)
