let has_sdr sets =
  (* owner: representative value -> index of the set currently using it *)
  let owner : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let sets = Array.of_list sets in
  let n = Array.length sets in
  (* Tries to assign set [i] a representative, stealing via augmenting
     paths; [visited] guards values already considered in this round. *)
  let rec try_assign i visited =
    Array.exists
      (fun v ->
        if Hashtbl.mem visited v then false
        else begin
          Hashtbl.replace visited v ();
          match Hashtbl.find_opt owner v with
          | None ->
            Hashtbl.replace owner v i;
            true
          | Some j ->
            if try_assign j visited then begin
              Hashtbl.replace owner v i;
              true
            end
            else false
        end)
      sets.(i)
  in
  let rec loop i =
    if i >= n then true
    else if try_assign i (Hashtbl.create 16) then loop (i + 1)
    else false
  in
  loop 0
