let scan ?wildcards ?(join = Semantics.Containment) ?(embedding = Semantics.Hom)
    ?(scope = `Roots) inv q =
  let out = ref [] in
  for record_id = 0 to Invfile.Inverted_file.record_count inv - 1 do
    (* tombstoned (deleted) records are skipped by the scan *)
    match Invfile.Inverted_file.record_value_opt inv record_id with
    | None -> ()
    | Some _ -> (
      let tree = Invfile.Inverted_file.record_tree inv record_id in
      match scope with
      | `Roots ->
        if Embed.at_node ?wildcards join embedding ~q ~s:tree tree.Nested.Tree.root
        then out := tree.Nested.Tree.root :: !out
      | `Anywhere ->
        Array.iter
          (fun id -> out := id :: !out)
          (Embed.nodes ?wildcards join embedding ~q ~s:tree))
  done;
  Intset.of_list !out

let matching_records ?(join = Semantics.Containment) ?(embedding = Semantics.Hom)
    inv q =
  let out = ref [] in
  for record_id = 0 to Invfile.Inverted_file.record_count inv - 1 do
    match Invfile.Inverted_file.record_value_opt inv record_id with
    | None -> ()
    | Some _ ->
      let tree = Invfile.Inverted_file.record_tree inv record_id in
      if Embed.at_node join embedding ~q ~s:tree tree.Nested.Tree.root then
        out := record_id :: !out
  done;
  List.rev !out
