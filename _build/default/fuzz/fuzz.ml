(* Differential fuzzer.

   Long-running randomized cross-checking of the whole stack, beyond what
   the qcheck properties cover per-module: each scenario builds a random
   collection on a random backend, interleaves incremental updates, and
   compares every algorithm/join/semantics combination against the
   value-level oracle and a model of the live records.

     dune exec fuzz/fuzz.exe            -- 200 scenarios
     dune exec fuzz/fuzz.exe -- 10000   -- more
     dune exec fuzz/fuzz.exe -- 500 99  -- scenarios, seed

   Exits non-zero on the first divergence, printing a reproducer. *)

module E = Containment.Engine
module S = Containment.Semantics
module V = Nested.Value
module IF = Invfile.Inverted_file

let atoms = [| "a"; "b"; "c"; "d"; "e" |]

let rec random_set rng depth =
  let n_leaves = Random.State.int rng 4 in
  let leaves =
    List.init n_leaves (fun _ -> V.atom atoms.(Random.State.int rng (Array.length atoms)))
  in
  let n_children = if depth >= 3 then 0 else Random.State.int rng 3 in
  let children = List.init n_children (fun _ -> random_set rng (depth + 1)) in
  V.set (leaves @ children)

let joins rng =
  match Random.State.int rng 5 with
  | 0 -> S.Containment
  | 1 -> S.Equality
  | 2 -> S.Superset
  | 3 -> S.Overlap (1 + Random.State.int rng 3)
  | _ -> S.Similarity (0.25 +. Random.State.float rng 0.75)

let embeddings rng =
  match Random.State.int rng 4 with
  | 0 -> S.Hom
  | 1 -> S.Iso
  | 2 -> S.Homeo
  | _ -> S.Homeo_full

let algorithms = [ ("bu", E.Bottom_up); ("td", E.Top_down); ("naive", E.Naive_scan) ]

let scenario rng i =
  let backend, cleanup =
    match Random.State.int rng 3 with
    | 0 -> (Containment.Collection.Mem, fun () -> ())
    | 1 ->
      let path = Filename.temp_file "fuzz" ".tch" in
      (Containment.Collection.Hash path, fun () -> try Sys.remove path with _ -> ())
    | _ ->
      let path = Filename.temp_file "fuzz" ".log" in
      (Containment.Collection.Log path, fun () -> try Sys.remove path with _ -> ())
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let n0 = 3 + Random.State.int rng 8 in
  let initial = List.init n0 (fun _ -> random_set rng 0) in
  let inv = Containment.Collection.of_values ~backend initial in
  (* model: live record id -> value *)
  let model : (int, V.t) Hashtbl.t = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace model i v) initial;
  (* a few random updates *)
  for _ = 1 to Random.State.int rng 6 do
    if Random.State.bool rng then begin
      let v = random_set rng 0 in
      let id = Invfile.Updater.add_value inv v in
      Hashtbl.replace model id v
    end
    else begin
      let id = Random.State.int rng (IF.record_count inv) in
      if Invfile.Updater.delete_record inv id then Hashtbl.remove model id
    end
  done;
  (* random queries under random configurations *)
  for _ = 1 to 8 do
    let q = random_set rng 1 in
    let join = joins rng and embedding = embeddings rng in
    match S.mode_of join embedding with
    | exception S.Unsupported _ -> ()
    | exception Invalid_argument _ -> ()
    | _ ->
      let expected =
        Hashtbl.fold
          (fun id s acc ->
            if Containment.Embed.check join embedding ~q ~s then id :: acc else acc)
          model []
        |> List.sort Int.compare
      in
      List.iter
        (fun (name, algorithm) ->
          (* the naive scan handles every combination the oracle does *)
          let config = { E.default with E.algorithm; E.join; E.embedding } in
          let got = (E.query ~config inv q).E.records in
          if got <> expected then begin
            Printf.printf "\nDIVERGENCE in scenario %d (%s, %s):\n" i name
              (Format.asprintf "%a × %a" S.pp_join join S.pp_embedding embedding);
            Printf.printf "  query: %s\n" (V.to_string q);
            Hashtbl.iter
              (fun id s -> Printf.printf "  record %d: %s\n" id (V.to_string s))
              model;
            Printf.printf "  got      [%s]\n"
              (String.concat ";" (List.map string_of_int got));
            Printf.printf "  expected [%s]\n"
              (String.concat ";" (List.map string_of_int expected));
            exit 1
          end)
        algorithms
  done;
  (* the collection must remain internally consistent after the updates *)
  (match Invfile.Integrity.check inv with
  | [] -> ()
  | problems ->
    Printf.printf "\nINTEGRITY FAILURE in scenario %d:\n" i;
    List.iter
      (fun p -> Format.printf "  %a@." Invfile.Integrity.pp_problem p)
      problems;
    Hashtbl.iter
      (fun id s -> Printf.printf "  record %d: %s\n" id (V.to_string s))
      model;
    exit 1);
  IF.close inv

let () =
  let scenarios =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let rng = Random.State.make [| seed; 0xf022 |] in
  let t0 = Unix.gettimeofday () in
  for i = 1 to scenarios do
    scenario rng i;
    if i mod 50 = 0 then begin
      Printf.printf "%d scenarios ok (%.1fs)\n" i (Unix.gettimeofday () -. t0);
      flush stdout
    end
  done;
  Printf.printf "all %d scenarios passed (%.1fs)\n" scenarios (Unix.gettimeofday () -. t0)
