(* Tests for the set-based join extensions (paper, Sec. 4.1): set-equality,
   superset, and ε-overlap joins, on both algorithms, against the oracle. *)

module E = Containment.Engine
module S = Containment.Semantics

let records ?(algorithm = E.Bottom_up) ?(verify = false) ~join inv q =
  (E.query ~config:{ E.default with E.algorithm; E.join; E.verify } inv q).E.records

let check_records = Alcotest.(check (list int))
let check_bool = Alcotest.(check bool)

let both_algorithms f () =
  f E.Bottom_up;
  f E.Top_down

(* --- set-equality join --- *)

let equality_data =
  [
    "{a, b, {c, d}}";      (* 0 *)
    "{b, a, {d, c}}";      (* 1 — equal to 0 up to order *)
    "{a, b, {c, d}, {e}}"; (* 2 — extra child *)
    "{a, b, {c}}";         (* 3 — smaller inner set *)
    "{a, {c, d}}";         (* 4 — fewer root leaves *)
  ]

let test_equality_basic =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection equality_data in
      check_records "only the two order-variants" [ 0; 1 ]
        (records ~algorithm:alg ~join:S.Equality inv (Testutil.v "{b, {d, c}, a}")))

let test_equality_not_mere_containment =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection equality_data in
      (* containment would also return 2 *)
      check_records "containment is looser" [ 0; 1; 2 ]
        (records ~algorithm:alg ~join:S.Containment inv (Testutil.v "{a, b, {c, d}}"));
      check_bool "equality excludes 2" true
        (not (List.mem 2 (records ~algorithm:alg ~join:S.Equality inv (Testutil.v "{a, b, {c, d}}")))))

let test_equality_leaf_count_filter_limits () =
  (* The paper's leaf-count rule alone cannot distinguish sets whose extra
     material hides in *which* children match; ~verify closes the gap. The
     canonical example needs child counts to agree too — our gen already
     filters those — so equality-by-algorithm may still overapproximate on
     non-injective matches; verified mode must be exact. *)
  let inv = Testutil.mem_collection [ "{a, {b}, {b, c}}" ] in
  let q = Testutil.v "{a, {b}, {b}}" in
  (* q collapses to {a, {b}}: child counts differ from the record's 2 → no
     match even unverified *)
  check_records "collapsed query" [] (records ~join:S.Equality inv q);
  let exact = records ~verify:true ~join:S.Equality inv (Testutil.v "{a, {b}, {b, c}}") in
  check_records "self equality verified" [ 0 ] exact

let prop_equality_verified_is_exact =
  Testutil.qcheck_case ~count:200 ~name:"equality join (verified) = value equality"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let got = records ~verify:true ~join:S.Equality inv q in
      let expected =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, v) -> if Nested.Value.equal q v then Some i else None)
      in
      got = expected)

let prop_equality_unverified_superset_of_exact =
  Testutil.qcheck_case ~count:200 ~name:"equality join ⊇ value equality (no false negatives)"
    (Testutil.arbitrary_collection ())
    (fun values ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let q = List.hd values in
      let inv = Containment.Collection.of_values values in
      let got = records ~join:S.Equality inv q in
      let exact =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, v) -> if Nested.Value.equal q v then Some i else None)
      in
      List.for_all (fun i -> List.mem i got) exact)

(* --- superset join --- *)

let superset_data =
  [
    "{a}";                  (* 0 ⊆ q *)
    "{a, b}";               (* 1 ⊆ q *)
    "{a, {c}}";             (* 2 ⊆ q *)
    "{a, z}";               (* 3 — z not in q *)
    "{a, {c, z}}";          (* 4 — inner z *)
    "{a, b, {c, d}, {e}}";  (* 5 = q *)
    "{{c, d}}";             (* 6 ⊆ q *)
    "{a, {d}}";             (* 7 ⊆ q ({d} hom-embeds into {c,d}) *)
  ]

let superset_query = "{a, b, {c, d}, {e}}"

let test_superset_basic =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection superset_data in
      check_records "contained records" [ 0; 1; 2; 5; 6; 7 ]
        (records ~algorithm:alg ~join:S.Superset inv (Testutil.v superset_query)))

let test_superset_empty_record () =
  let inv = Testutil.mem_collection [ "{}"; "{z}" ] in
  check_records "empty set is contained in anything" [ 0 ]
    (records ~join:S.Superset inv (Testutil.v "{a}"))

let prop_superset_is_reverse_containment =
  Testutil.qcheck_case ~count:200 ~name:"q ⊇ s ⟺ s ⊆ q (vs oracle)"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value)
    (fun (values, q) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let got = records ~join:S.Superset inv q in
      let expected =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, s) ->
               if Containment.Embed.contains S.Hom ~q:s ~s:q then Some i else None)
      in
      got = expected)

let prop_superset_bu_eq_td =
  Testutil.qcheck_case ~count:150 ~name:"superset: BU = TD"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      records ~algorithm:E.Bottom_up ~join:S.Superset inv q
      = records ~algorithm:E.Top_down ~join:S.Superset inv q)

(* --- ε-overlap join --- *)

let overlap_data =
  [
    "{a, b, c}";        (* 0: 3 common *)
    "{a, b, z}";        (* 1: 2 common *)
    "{a, y, z}";        (* 2: 1 common *)
    "{x, y, z}";        (* 3: 0 common *)
    "{a, b, {p, q}}";   (* 4: 2 common at root, child ignored by flat query *)
  ]

let overlap_query = "{a, b, c, d}"

let test_overlap_thresholds =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection overlap_data in
      let at eps = records ~algorithm:alg ~join:(S.Overlap eps) inv (Testutil.v overlap_query) in
      check_records "ε=1" [ 0; 1; 2; 4 ] (at 1);
      check_records "ε=2" [ 0; 1; 4 ] (at 2);
      check_records "ε=3" [ 0 ] (at 3);
      check_records "ε=4" [] (at 4))

let test_overlap_nested_structure () =
  (* every internal query node must overlap its image by ε *)
  let inv = Testutil.mem_collection [ "{a, b, {c, d}}"; "{a, b, {c, z}}" ] in
  let q = Testutil.v "{a, b, {c, d}}" in
  check_records "ε=2 needs 2 at every level" [ 0 ]
    (records ~join:(S.Overlap 2) inv q);
  check_records "ε=1 accepts both" [ 0; 1 ] (records ~join:(S.Overlap 1) inv q)

let test_overlap_eps_zero_rejected () =
  let inv = Testutil.mem_collection [ "{a}" ] in
  match records ~join:(S.Overlap 0) inv (Testutil.v "{a}") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ε = 0 must be rejected"

let prop_overlap_matches_oracle =
  Testutil.qcheck_case ~count:200 ~name:"ε-overlap = oracle (ε ∈ {1,2})"
    (QCheck.triple (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value
       (QCheck.int_range 1 2))
    (fun (values, q, eps) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let got = records ~join:(S.Overlap eps) inv q in
      let expected =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, s) ->
               if Containment.Embed.check (S.Overlap eps) S.Hom ~q ~s then Some i
               else None)
      in
      got = expected)

let prop_overlap_monotone_in_eps =
  Testutil.qcheck_case ~count:150 ~name:"ε-overlap antitone in ε"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value)
    (fun (values, q) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let r1 = records ~join:(S.Overlap 1) inv q in
      let r2 = records ~join:(S.Overlap 2) inv q in
      List.for_all (fun i -> List.mem i r1) r2)

let prop_containment_implies_overlap1_when_leafy =
  Testutil.qcheck_case ~count:150
    ~name:"containment ⇒ 1-overlap (for queries with leaves everywhere)"
    (Testutil.arbitrary_collection ())
    (fun values ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let q = List.hd values in
      QCheck.assume
        (not (Containment.Query.has_leafless_node (Containment.Query.of_value q)));
      let contained = records ~join:S.Containment inv q in
      let overlapping = records ~join:(S.Overlap 1) inv q in
      List.for_all (fun i -> List.mem i overlapping) contained)

(* --- unsupported combinations --- *)

let test_unsupported_combinations () =
  let inv = Testutil.mem_collection [ "{a}" ] in
  let expect_unsupported join embedding =
    match
      E.query
        ~config:{ E.default with E.join; E.embedding }
        inv (Testutil.v "{a}")
    with
    | exception S.Unsupported _ -> ()
    | _ -> Alcotest.fail "expected Unsupported"
  in
  expect_unsupported S.Superset S.Iso;
  expect_unsupported S.Superset S.Homeo;
  expect_unsupported S.Equality S.Homeo

let () =
  Alcotest.run "joins"
    [
      ( "equality",
        [
          Alcotest.test_case "basic" `Quick test_equality_basic;
          Alcotest.test_case "tighter than containment" `Quick
            test_equality_not_mere_containment;
          Alcotest.test_case "verification closes gaps" `Quick
            test_equality_leaf_count_filter_limits;
          prop_equality_verified_is_exact;
          prop_equality_unverified_superset_of_exact;
        ] );
      ( "superset",
        [
          Alcotest.test_case "basic" `Quick test_superset_basic;
          Alcotest.test_case "empty record" `Quick test_superset_empty_record;
          prop_superset_is_reverse_containment;
          prop_superset_bu_eq_td;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "thresholds" `Quick test_overlap_thresholds;
          Alcotest.test_case "nested structure" `Quick test_overlap_nested_structure;
          Alcotest.test_case "ε=0 rejected" `Quick test_overlap_eps_zero_rejected;
          prop_overlap_matches_oracle;
          prop_overlap_monotone_in_eps;
          prop_containment_implies_overlap1_when_leafy;
        ] );
      ( "unsupported",
        [ Alcotest.test_case "superset×iso etc." `Quick test_unsupported_combinations ] );
    ]
