(* Tests for the nested data model: Value, Syntax, Tree. *)

module V = Nested.Value
module S = Nested.Syntax
module T = Nested.Tree

let check_value = Alcotest.(check Testutil.value_testable)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Value --- *)

let test_canonical_dedup () =
  check_value "duplicates collapse"
    (V.of_atoms [ "a"; "b" ])
    (V.set [ V.atom "b"; V.atom "a"; V.atom "b"; V.atom "a" ]);
  check_value "nested duplicates collapse"
    (V.set [ V.set [ V.atom "a" ] ])
    (V.set [ V.set [ V.atom "a" ]; V.set [ V.atom "a" ] ])

let test_canonical_order_irrelevant () =
  let a = S.of_string "{x, {y, z}, {z}}" in
  let b = S.of_string "{{z}, {z, y}, x}" in
  check_bool "equal" true (V.equal a b);
  check_int "same hash" (V.hash a) (V.hash b);
  check_int "compare 0" 0 (V.compare a b)

let test_compare_total_order () =
  check_bool "atom < set" true (V.compare (V.atom "z") (V.set []) < 0);
  check_bool "atoms by string" true (V.compare (V.atom "a") (V.atom "b") < 0);
  check_bool "sets lexicographic" true
    (V.compare (S.of_string "{a}") (S.of_string "{a, b}") < 0)

let test_measures () =
  let x = S.of_string "{a, b, {c, {d}}, {e}}" in
  check_int "cardinal" 4 (V.cardinal x);
  check_int "size: 4 internal + 5 leaves" 9 (V.size x);
  check_int "internal_count" 4 (V.internal_count x);
  check_int "leaf_count" 5 (V.leaf_count x);
  check_int "depth" 3 (V.depth x);
  check_int "atom depth" 0 (V.depth (V.atom "a"));
  check_int "empty set depth" 1 (V.depth V.empty);
  Alcotest.(check (list string))
    "atom_universe" [ "a"; "b"; "c"; "d"; "e" ] (V.atom_universe x)

let test_flat_ops () =
  let a = S.of_string "{a, b, {c}}" and b = S.of_string "{b, {c}, {d}}" in
  check_value "union" (S.of_string "{a, b, {c}, {d}}") (V.union a b);
  check_value "inter" (S.of_string "{b, {c}}") (V.inter a b);
  check_value "diff" (S.of_string "{a}") (V.diff a b);
  check_bool "subset yes" true (V.subset (S.of_string "{b, {c}}") a);
  check_bool "subset no: {c} vs {c,x} differ as elements" false
    (V.subset (S.of_string "{b, {c, x}}") a)

let test_add_remove_mem () =
  let x = S.of_string "{a, {b}}" in
  check_bool "mem atom" true (V.mem (V.atom "a") x);
  check_bool "mem set" true (V.mem (S.of_string "{b}") x);
  check_bool "not mem" false (V.mem (V.atom "b") x);
  check_value "add" (S.of_string "{a, c, {b}}") (V.add (V.atom "c") x);
  check_value "add existing is idempotent" x (V.add (V.atom "a") x);
  check_value "remove" (S.of_string "{a}") (V.remove (S.of_string "{b}") x)

let test_map_atoms () =
  let x = S.of_string "{b, a, {c, a}}" in
  check_value "rename all to z collapses"
    (S.of_string "{z, {z}}")
    (V.map_atoms (fun _ -> "z") x)

let test_elements_on_atom_raises () =
  Alcotest.check_raises "elements on atom"
    (Invalid_argument "Value.elements: atom x") (fun () ->
      ignore (V.elements (V.atom "x")))

(* --- Syntax --- *)

let test_parse_example () =
  (* Table 1, Sue's record *)
  let sue = S.of_string Testutil.(List.hd licences_strings) in
  check_int "cardinal" 4 (V.cardinal sue);
  check_bool "has London" true (V.mem (V.atom "London") sue)

let test_parse_whitespace_and_empty () =
  check_value "empty set" V.empty (S.of_string "  { } ");
  check_value "spaces" (S.of_string "{a,b}") (S.of_string " { a , b } ");
  check_value "newlines" (S.of_string "{a,{b}}") (S.of_string "{\n a ,\n {\n b }\n}\n")

let test_parse_quoted () =
  check_value "quoted atom with space"
    (V.set [ V.atom "hello world" ])
    (S.of_string "{\"hello world\"}");
  check_value "escapes"
    (V.set [ V.atom "a\"b\\c\nd" ])
    (S.of_string "{\"a\\\"b\\\\c\\nd\"}");
  check_value "quoted atom with braces"
    (V.set [ V.atom "{x, y}" ])
    (S.of_string "{\"{x, y}\"}")

let test_parse_top_level_atom () =
  check_value "bare atom" (V.atom "hello") (S.of_string "hello");
  check_value "quoted atom" (V.atom "a b") (S.of_string "\"a b\"")

let test_parse_errors () =
  let fails s =
    match S.of_string_opt s with
    | None -> ()
    | Some v -> Alcotest.failf "%S unexpectedly parsed to %a" s V.pp v
  in
  List.iter fails [ "{"; "{a,}"; "{a b}"; "}"; "{a} x"; "\"unterminated"; ""; "{a,,b}" ]

let test_parse_many () =
  let vs = S.parse_many "{a}\n{b, {c}}\n  {d}  " in
  check_int "three values" 3 (List.length vs);
  check_value "second" (S.of_string "{b, {c}}") (List.nth vs 1)

let test_roundtrip_specific () =
  let cases =
    [ "{}"; "{a}"; "{a, b, {c, {d, e}}, {f}}"; "{\"x y\", \"a,b\", \"{\"}" ]
  in
  List.iter
    (fun s ->
      let v = S.of_string s in
      check_value ("roundtrip " ^ s) v (S.of_string (S.to_string v)))
    cases

let prop_roundtrip =
  Testutil.qcheck_case ~name:"syntax roundtrip" Testutil.arbitrary_value (fun v ->
      V.equal v (S.of_string (S.to_string v)))

let prop_canonical_stable =
  Testutil.qcheck_case ~name:"canonicalization is idempotent"
    Testutil.arbitrary_value (fun v ->
      if V.is_atom v then true
      else V.equal v (V.set (V.elements v)))

let prop_union_commutative =
  Testutil.qcheck_case ~name:"union commutative"
    (QCheck.pair Testutil.arbitrary_value Testutil.arbitrary_value)
    (fun (a, b) ->
      QCheck.assume (V.is_set a && V.is_set b);
      V.equal (V.union a b) (V.union b a))

let prop_inter_subset =
  Testutil.qcheck_case ~name:"inter is a subset of both"
    (QCheck.pair Testutil.arbitrary_value Testutil.arbitrary_value)
    (fun (a, b) ->
      QCheck.assume (V.is_set a && V.is_set b);
      let i = V.inter a b in
      V.subset i a && V.subset i b)

let prop_subset_diff_empty =
  Testutil.qcheck_case ~name:"a ⊆ b ⟺ a∖b = {}"
    (QCheck.pair Testutil.arbitrary_value Testutil.arbitrary_value)
    (fun (a, b) ->
      QCheck.assume (V.is_set a && V.is_set b);
      V.subset a b = V.equal (V.diff a b) V.empty)

(* --- Tree --- *)

let tree_of s =
  let alloc = T.allocator () in
  T.of_value alloc ~record_id:0 (S.of_string s)

let test_tree_roundtrip () =
  let s = "{a, b, {c, {d}}, {e}}" in
  let t = tree_of s in
  check_value "to_value inverts of_value" (S.of_string s) (T.to_value t)

let test_tree_ids_preorder () =
  let t = tree_of "{a, {b, {c}}, {d}}" in
  check_int "root id 0" 0 t.T.root;
  check_int "4 internal nodes" 4 (T.node_count t);
  let root = T.root_node t in
  Alcotest.(check (list int))
    "children ascending"
    (List.sort Int.compare (Array.to_list root.T.children))
    (Array.to_list root.T.children);
  T.iter
    (fun n ->
      Array.iter (fun c -> check_bool "child id > parent id" true (c > n.T.id)) n.T.children)
    t

let test_tree_parent_links () =
  let t = tree_of "{a, {b, {c}}, {d}}" in
  check_int "root parent" (-1) (T.root_node t).T.parent;
  T.iter
    (fun n ->
      Array.iter (fun c -> check_int "parent link" n.T.id (T.node t c).T.parent) n.T.children)
    t

let test_tree_descendants () =
  let t = tree_of "{a, {b, {c}}, {d}}" in
  (* node ids: 0 = root, 1 = {b,{c}}, 2 = {c}, 3 = {d} *)
  check_bool "0 anc 2" true (T.is_descendant t ~anc:0 ~desc:2);
  check_bool "1 anc 2" true (T.is_descendant t ~anc:1 ~desc:2);
  check_bool "not self" false (T.is_descendant t ~anc:1 ~desc:1);
  check_bool "siblings" false (T.is_descendant t ~anc:1 ~desc:3);
  check_bool "reversed" false (T.is_descendant t ~anc:2 ~desc:1)

let test_tree_shared_allocator () =
  let alloc = T.allocator () in
  let t1 = T.of_value alloc ~record_id:0 (S.of_string "{a, {b}}") in
  let t2 = T.of_value alloc ~record_id:1 (S.of_string "{c}") in
  check_int "t1 ids 0.." 0 t1.T.first_id;
  check_int "t2 continues" 2 t2.T.first_id;
  check_bool "no overlap" false (T.mem_id t1 t2.T.root);
  check_int "next_id" 3 (T.next_id alloc)

let test_tree_allocator_from () =
  (* Rebuilding a record at its original offset reproduces identical ids. *)
  let alloc = T.allocator () in
  let _ = T.of_value alloc ~record_id:0 (S.of_string "{x, {y}}") in
  let v = S.of_string "{a, {b, {c}}, {d}}" in
  let t1 = T.of_value alloc ~record_id:1 v in
  let t2 = T.of_value (T.allocator_from t1.T.first_id) ~record_id:1 v in
  check_int "same root" t1.T.root t2.T.root;
  T.iter
    (fun n1 ->
      let n2 = T.node t2 n1.T.id in
      check_int "same post" n1.T.post n2.T.post;
      check_string "same leaves" (String.concat "," (Array.to_list n1.T.leaves))
        (String.concat "," (Array.to_list n2.T.leaves)))
    t1

let test_tree_measures () =
  let t = tree_of "{a, b, {c, {d}}, {e}}" in
  check_int "leaf_count" 5 (T.leaf_count t);
  check_int "depth" 3 (T.depth t)

let test_subtree_value () =
  let t = tree_of "{a, {b, {c}}, {d}}" in
  check_value "subtree at 1" (S.of_string "{b, {c}}") (T.subtree_value t 1);
  check_value "subtree at root" (T.to_value t) (T.subtree_value t t.T.root)

let test_tree_of_atom_raises () =
  Alcotest.check_raises "atom rejected"
    (Invalid_argument "Tree.of_value: record value must be a set") (fun () ->
      ignore (T.of_value (T.allocator ()) ~record_id:0 (V.atom "a")))

let prop_tree_roundtrip =
  Testutil.qcheck_case ~name:"tree roundtrip" Testutil.arbitrary_value (fun v ->
      QCheck.assume (V.is_set v);
      let t = T.of_value (T.allocator ()) ~record_id:0 v in
      V.equal v (T.to_value t))

let prop_tree_counts =
  Testutil.qcheck_case ~name:"tree node counts match value measures"
    Testutil.arbitrary_value (fun v ->
      QCheck.assume (V.is_set v);
      let t = T.of_value (T.allocator ()) ~record_id:0 v in
      T.node_count t = V.internal_count v && T.leaf_count t = V.leaf_count v)

let prop_pre_post_intervals =
  Testutil.qcheck_case ~name:"pre/post intervals nest or are disjoint"
    Testutil.arbitrary_value (fun v ->
      QCheck.assume (V.is_set v);
      let t = T.of_value (T.allocator ()) ~record_id:0 v in
      let ok = ref true in
      T.iter
        (fun a ->
          T.iter
            (fun b ->
              if a.T.id <> b.T.id then begin
                let a_desc_b = T.is_descendant t ~anc:b.T.id ~desc:a.T.id in
                let b_desc_a = T.is_descendant t ~anc:a.T.id ~desc:b.T.id in
                if a_desc_b && b_desc_a then ok := false
              end)
            t)
        t;
      !ok)

let () =
  Alcotest.run "nested"
    [
      ( "value",
        [
          Alcotest.test_case "canonical dedup" `Quick test_canonical_dedup;
          Alcotest.test_case "order irrelevant" `Quick test_canonical_order_irrelevant;
          Alcotest.test_case "total order" `Quick test_compare_total_order;
          Alcotest.test_case "measures" `Quick test_measures;
          Alcotest.test_case "flat ops" `Quick test_flat_ops;
          Alcotest.test_case "add/remove/mem" `Quick test_add_remove_mem;
          Alcotest.test_case "map_atoms" `Quick test_map_atoms;
          Alcotest.test_case "elements on atom" `Quick test_elements_on_atom_raises;
          prop_canonical_stable;
          prop_union_commutative;
          prop_inter_subset;
          prop_subset_diff_empty;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "parse example" `Quick test_parse_example;
          Alcotest.test_case "whitespace/empty" `Quick test_parse_whitespace_and_empty;
          Alcotest.test_case "quoted atoms" `Quick test_parse_quoted;
          Alcotest.test_case "top-level atom" `Quick test_parse_top_level_atom;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "parse_many" `Quick test_parse_many;
          Alcotest.test_case "roundtrip cases" `Quick test_roundtrip_specific;
          prop_roundtrip;
        ] );
      ( "tree",
        [
          Alcotest.test_case "roundtrip" `Quick test_tree_roundtrip;
          Alcotest.test_case "preorder ids" `Quick test_tree_ids_preorder;
          Alcotest.test_case "parent links" `Quick test_tree_parent_links;
          Alcotest.test_case "descendants" `Quick test_tree_descendants;
          Alcotest.test_case "shared allocator" `Quick test_tree_shared_allocator;
          Alcotest.test_case "allocator_from" `Quick test_tree_allocator_from;
          Alcotest.test_case "measures" `Quick test_tree_measures;
          Alcotest.test_case "subtree_value" `Quick test_subtree_value;
          Alcotest.test_case "atom rejected" `Quick test_tree_of_atom_raises;
          prop_tree_roundtrip;
          prop_tree_counts;
          prop_pre_post_intervals;
        ] );
    ]
