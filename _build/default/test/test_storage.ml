(* Tests for the storage substrate: codec, stores, pager. *)

module C = Storage.Codec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Codec --- *)

let test_varint_roundtrip () =
  let cases = [ 0; 1; 127; 128; 255; 300; 16384; 1 lsl 30; max_int ] in
  List.iter
    (fun n ->
      let w = C.writer () in
      C.write_varint w n;
      let r = C.reader (C.contents w) in
      check_int (Printf.sprintf "varint %d" n) n (C.read_varint r);
      check_bool "consumed" true (C.at_end r))
    cases

let test_varint_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Codec.write_varint: negative")
    (fun () -> C.write_varint (C.writer ()) (-1))

let test_int_array_roundtrip () =
  let cases = [ [||]; [| 0 |]; [| 5 |]; [| 0; 1; 2 |]; [| 3; 100; 101; 5000 |] ] in
  List.iter
    (fun a ->
      let s = C.encode_int_array a in
      Alcotest.(check (array int)) "roundtrip" a (C.decode_int_array s))
    cases

let test_int_array_monotone_enforced () =
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Codec.write_int_array: not strictly increasing") (fun () ->
      ignore (C.encode_int_array [| 3; 3 |]))

let test_string_roundtrip () =
  let w = C.writer () in
  C.write_string w "";
  C.write_string w "hello";
  C.write_string w (String.make 1000 '\xff');
  let r = C.reader (C.contents w) in
  check_string "empty" "" (C.read_string r);
  check_string "hello" "hello" (C.read_string r);
  check_int "binary blob" 1000 (String.length (C.read_string r))

let test_corrupt_detection () =
  (match C.read_varint (C.reader "\x80") with
  | exception C.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on truncated varint");
  match C.read_string (C.reader "\x05ab") with
  | exception C.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on short string"

let prop_int_list_roundtrip =
  Testutil.qcheck_case ~name:"int list roundtrip"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 50) QCheck.small_nat)
    (fun l ->
      let l = List.sort_uniq Int.compare l in
      let w = C.writer () in
      C.write_int_list w l;
      C.read_int_list (C.reader (C.contents w)) = l)

let prop_mixed_stream =
  Testutil.qcheck_case ~name:"mixed write/read stream"
    (QCheck.pair QCheck.small_nat QCheck.printable_string)
    (fun (n, s) ->
      let w = C.writer () in
      C.write_varint w n;
      C.write_string w s;
      C.write_varint w (n + 1);
      let r = C.reader (C.contents w) in
      C.read_varint r = n && C.read_string r = s && C.read_varint r = n + 1)

(* --- Bitpack --- *)

let test_bitpack_roundtrip_cases () =
  let cases =
    [
      [||];
      [| 0 |];
      [| 0; 0; 0 |];
      [| 1; 2; 3 |];
      [| 127; 128; 255; 256 |];
      Array.init 1000 (fun i -> i * i);
      Array.init 129 (fun _ -> 0) (* exactly one block + 1 of zeros *);
      [| (1 lsl 54) - 1 |];
    ]
  in
  List.iter
    (fun a ->
      Alcotest.(check (array int))
        (Printf.sprintf "roundtrip %d items" (Array.length a))
        a
        (Storage.Bitpack.unpack (Storage.Bitpack.pack a)))
    cases

let test_bitpack_validation () =
  (match Storage.Bitpack.pack [| -1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative must be rejected");
  match Storage.Bitpack.pack [| 1 lsl 55 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized must be rejected"

let test_bitpack_size_estimate () =
  let a = Array.init 500 (fun i -> i mod 7) in
  check_int "packed_size = length of pack" (String.length (Storage.Bitpack.pack a))
    (Storage.Bitpack.packed_size a);
  (* 3-bit values: ~8x smaller than 64-bit, far smaller than varint's 1 B *)
  check_bool "beats one byte per value" true
    (Storage.Bitpack.packed_size a < 500)

let test_bitpack_corrupt () =
  match Storage.Bitpack.unpack "@" with
  | exception Storage.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad width must be rejected"

let prop_bitpack_roundtrip =
  Testutil.qcheck_case ~name:"bitpack roundtrip"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 400) (QCheck.int_bound 1_000_000))
    (fun l ->
      let a = Array.of_list l in
      Storage.Bitpack.unpack (Storage.Bitpack.pack a) = a)

(* --- store conformance suite, run against all three backends --- *)

let store_suite name (mk : unit -> Storage.Kv.t * (unit -> unit)) =
  let with_store f () =
    let store, cleanup = mk () in
    Fun.protect ~finally:cleanup (fun () -> f store)
  in
  [
    Alcotest.test_case (name ^ ": put/get") `Quick
      (with_store (fun s ->
           s.Storage.Kv.put "k1" "v1";
           s.Storage.Kv.put "k2" "v2";
           Alcotest.(check (option string)) "k1" (Some "v1") (s.Storage.Kv.get "k1");
           Alcotest.(check (option string)) "k2" (Some "v2") (s.Storage.Kv.get "k2");
           Alcotest.(check (option string)) "absent" None (s.Storage.Kv.get "k3")));
    Alcotest.test_case (name ^ ": replace") `Quick
      (with_store (fun s ->
           s.Storage.Kv.put "k" "old";
           s.Storage.Kv.put "k" "new";
           Alcotest.(check (option string)) "replaced" (Some "new") (s.Storage.Kv.get "k");
           check_int "length 1" 1 (s.Storage.Kv.length ())));
    Alcotest.test_case (name ^ ": delete") `Quick
      (with_store (fun s ->
           s.Storage.Kv.put "k" "v";
           check_bool "present deleted" true (s.Storage.Kv.delete "k");
           check_bool "absent delete" false (s.Storage.Kv.delete "k");
           Alcotest.(check (option string)) "gone" None (s.Storage.Kv.get "k");
           check_int "length 0" 0 (s.Storage.Kv.length ())));
    Alcotest.test_case (name ^ ": empty key and value") `Quick
      (with_store (fun s ->
           s.Storage.Kv.put "" "empty-key";
           s.Storage.Kv.put "ek" "";
           Alcotest.(check (option string)) "empty key" (Some "empty-key")
             (s.Storage.Kv.get "");
           Alcotest.(check (option string)) "empty value" (Some "") (s.Storage.Kv.get "ek")));
    Alcotest.test_case (name ^ ": binary safety") `Quick
      (with_store (fun s ->
           let k = "\x00\x01\xff bin" and v = String.init 256 Char.chr in
           s.Storage.Kv.put k v;
           Alcotest.(check (option string)) "binary" (Some v) (s.Storage.Kv.get k)));
    Alcotest.test_case (name ^ ": iter sees all") `Quick
      (with_store (fun s ->
           let n = 100 in
           for i = 0 to n - 1 do
             s.Storage.Kv.put (Printf.sprintf "key%03d" i) (string_of_int i)
           done;
           let keys = Storage.Kv.keys s in
           check_int "count" n (List.length keys);
           check_string "first" "key000" (List.hd keys);
           check_int "length agrees" n (s.Storage.Kv.length ())));
    Alcotest.test_case (name ^ ": many keys with collisions") `Quick
      (with_store (fun s ->
           (* far more keys than hash buckets in the test configuration *)
           let n = 2000 in
           for i = 0 to n - 1 do
             s.Storage.Kv.put ("k" ^ string_of_int i) (String.make (i mod 37) 'x')
           done;
           let ok = ref true in
           for i = 0 to n - 1 do
             match s.Storage.Kv.get ("k" ^ string_of_int i) with
             | Some v when String.length v = i mod 37 -> ()
             | _ -> ok := false
           done;
           check_bool "all retrievable" true !ok));
    Alcotest.test_case (name ^ ": large values") `Quick
      (with_store (fun s ->
           let big = String.init 200_000 (fun i -> Char.chr (i land 0xff)) in
           s.Storage.Kv.put "big" big;
           s.Storage.Kv.put "small" "s";
           Alcotest.(check (option string)) "big back" (Some big) (s.Storage.Kv.get "big");
           Alcotest.(check (option string)) "small intact" (Some "s")
             (s.Storage.Kv.get "small")));
    Alcotest.test_case (name ^ ": update helper") `Quick
      (with_store (fun s ->
           let bump v =
             match v with None -> "1" | Some x -> string_of_int (1 + int_of_string x)
           in
           Storage.Kv.update s "cnt" bump;
           Storage.Kv.update s "cnt" bump;
           Alcotest.(check (option string)) "updated twice" (Some "2")
             (s.Storage.Kv.get "cnt")));
  ]

let mem_store () = (Storage.Mem_store.create (), fun () -> ())

let hash_store () =
  let path = Testutil.temp_path ".tch" in
  let s = Storage.Hash_store.create ~buckets:64 path in
  ( s,
    fun () ->
      s.Storage.Kv.close ();
      try Sys.remove path with Sys_error _ -> () )

let log_store () =
  let path = Testutil.temp_path ".log"  in
  let s = Storage.Log_store.create path in
  ( s,
    fun () ->
      s.Storage.Kv.close ();
      try Sys.remove path with Sys_error _ -> () )

let btree_store () =
  let path = Testutil.temp_path ".tcb" in
  let s = Storage.Btree_store.create ~page_size:512 path in
  ( s,
    fun () ->
      s.Storage.Kv.close ();
      try Sys.remove path with Sys_error _ -> () )

(* --- persistence --- *)

let test_hash_reopen () =
  Testutil.with_temp_path ".tch" (fun path ->
      let s = Storage.Hash_store.create ~buckets:16 path in
      for i = 0 to 499 do
        s.Storage.Kv.put ("k" ^ string_of_int i) ("v" ^ string_of_int i)
      done;
      ignore (s.Storage.Kv.delete "k13");
      s.Storage.Kv.close ();
      let s2 = Storage.Hash_store.open_existing path in
      Alcotest.(check (option string)) "survives" (Some "v42") (s2.Storage.Kv.get "k42");
      Alcotest.(check (option string)) "deletion survives" None (s2.Storage.Kv.get "k13");
      check_int "count" 499 (s2.Storage.Kv.length ());
      s2.Storage.Kv.close ())

let test_btree_reopen () =
  Testutil.with_temp_path ".tcb" (fun path ->
      let s = Storage.Btree_store.create ~page_size:512 path in
      for i = 0 to 499 do
        s.Storage.Kv.put (Printf.sprintf "k%04d" i) ("v" ^ string_of_int i)
      done;
      s.Storage.Kv.close ();
      let s2 = Storage.Btree_store.open_existing ~page_size:512 path in
      Alcotest.(check (option string)) "survives" (Some "v42") (s2.Storage.Kv.get "k0042");
      check_int "count" 500 (s2.Storage.Kv.length ());
      s2.Storage.Kv.close ())

let test_btree_sorted_iter_and_range () =
  Testutil.with_temp_path ".tcb" (fun path ->
      let s = Storage.Btree_store.create ~page_size:512 path in
      let n = 300 in
      (* insert in reverse to exercise ordering *)
      for i = n - 1 downto 0 do
        s.Storage.Kv.put (Printf.sprintf "k%04d" i) (string_of_int i)
      done;
      let keys = ref [] in
      s.Storage.Kv.iter (fun k _ -> keys := k :: !keys);
      let keys = List.rev !keys in
      Alcotest.(check (list string))
        "iter ascending"
        (List.init n (Printf.sprintf "k%04d"))
        keys;
      let r = Storage.Btree_store.range s ~lo:"k0010" ~hi:"k0015" in
      Alcotest.(check (list string))
        "range [10,15)"
        [ "k0010"; "k0011"; "k0012"; "k0013"; "k0014" ]
        (List.map fst r);
      s.Storage.Kv.close ())

let test_hash_io_stats_count () =
  Testutil.with_temp_path ".tch" (fun path ->
      let s = Storage.Hash_store.create ~buckets:16 path in
      s.Storage.Kv.put "a" "1";
      let r0 = Storage.Io_stats.reads s.Storage.Kv.stats in
      ignore (s.Storage.Kv.get "a");
      check_bool "get does real reads" true
        (Storage.Io_stats.reads s.Storage.Kv.stats > r0);
      s.Storage.Kv.close ())

let test_hash_closed_raises () =
  Testutil.with_temp_path ".tch" (fun path ->
      let s = Storage.Hash_store.create ~buckets:16 path in
      s.Storage.Kv.close ();
      match s.Storage.Kv.get "x" with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected failure on closed store")

(* --- log store: persistence, crash recovery, compaction --- *)

let test_log_reopen () =
  Testutil.with_temp_path ".log" (fun path ->
      let s = Storage.Log_store.create path in
      for i = 0 to 299 do
        s.Storage.Kv.put ("k" ^ string_of_int i) ("v" ^ string_of_int i)
      done;
      s.Storage.Kv.put "k7" "updated";
      ignore (s.Storage.Kv.delete "k13");
      s.Storage.Kv.close ();
      let s2 = Storage.Log_store.open_existing path in
      Alcotest.(check (option string)) "survives" (Some "v42") (s2.Storage.Kv.get "k42");
      Alcotest.(check (option string)) "latest version wins" (Some "updated")
        (s2.Storage.Kv.get "k7");
      Alcotest.(check (option string)) "tombstone survives" None (s2.Storage.Kv.get "k13");
      check_int "count" 299 (s2.Storage.Kv.length ());
      s2.Storage.Kv.close ())

let test_log_torn_tail_recovery () =
  Testutil.with_temp_path ".log" (fun path ->
      let s = Storage.Log_store.create path in
      s.Storage.Kv.put "stable" "value";
      s.Storage.Kv.put "casualty" "lost";
      s.Storage.Kv.close ();
      (* simulate a crash mid-append: truncate into the last record *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      let size = (Unix.fstat fd).Unix.st_size in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      let s2 = Storage.Log_store.open_existing path in
      Alcotest.(check (option string)) "prefix intact" (Some "value")
        (s2.Storage.Kv.get "stable");
      Alcotest.(check (option string)) "torn record dropped" None
        (s2.Storage.Kv.get "casualty");
      (* the store is writable again after recovery *)
      s2.Storage.Kv.put "after" "crash";
      s2.Storage.Kv.close ();
      let s3 = Storage.Log_store.open_existing path in
      Alcotest.(check (option string)) "post-recovery write persists" (Some "crash")
        (s3.Storage.Kv.get "after");
      s3.Storage.Kv.close ())

let test_log_corrupt_middle_truncates () =
  Testutil.with_temp_path ".log" (fun path ->
      let s = Storage.Log_store.create path in
      s.Storage.Kv.put "first" "1";
      s.Storage.Kv.put "second" "2";
      s.Storage.Kv.put "third" "3";
      s.Storage.Kv.close ();
      (* flip a byte inside the second record's value *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      let contents = Bytes.create ((Unix.fstat fd).Unix.st_size) in
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let rec readall pos =
        if pos < Bytes.length contents then
          let n = Unix.read fd contents pos (Bytes.length contents - pos) in
          if n > 0 then readall (pos + n)
      in
      readall 0;
      let pos = 8 + 13 + 5 + 1 + 13 + 3 (* inside the second record *) in
      Bytes.set contents pos (Char.chr (Char.code (Bytes.get contents pos) lxor 0xff));
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      ignore (Unix.write fd contents 0 (Bytes.length contents));
      Unix.close fd;
      let s2 = Storage.Log_store.open_existing path in
      Alcotest.(check (option string)) "first intact" (Some "1") (s2.Storage.Kv.get "first");
      Alcotest.(check (option string)) "corrupt dropped" None (s2.Storage.Kv.get "second");
      Alcotest.(check (option string)) "suffix after corruption dropped too" None
        (s2.Storage.Kv.get "third");
      s2.Storage.Kv.close ())

let test_log_compaction () =
  Testutil.with_temp_path ".log" (fun path ->
      let s = Storage.Log_store.create path in
      for i = 0 to 99 do
        s.Storage.Kv.put "hot" ("version" ^ string_of_int i)
      done;
      s.Storage.Kv.put "other" "x";
      ignore (s.Storage.Kv.delete "other");
      check_bool "dead bytes accumulated" true (Storage.Log_store.dead_bytes s > 0);
      let size_before = (Unix.stat path).Unix.st_size in
      Storage.Log_store.compact s;
      let size_after = (Unix.stat path).Unix.st_size in
      check_bool "file shrank" true (size_after < size_before);
      check_int "no dead bytes" 0 (Storage.Log_store.dead_bytes s);
      Alcotest.(check (option string)) "latest version kept" (Some "version99")
        (s.Storage.Kv.get "hot");
      Alcotest.(check (option string)) "tombstoned gone" None (s.Storage.Kv.get "other");
      (* still usable and reopenable after compaction *)
      s.Storage.Kv.put "post" "compact";
      s.Storage.Kv.close ();
      let s2 = Storage.Log_store.open_existing path in
      Alcotest.(check (option string)) "reopen after compact" (Some "version99")
        (s2.Storage.Kv.get "hot");
      Alcotest.(check (option string)) "post-compact write" (Some "compact")
        (s2.Storage.Kv.get "post");
      s2.Storage.Kv.close ())

let prop_log_store_model =
  Testutil.qcheck_case ~count:60 ~name:"log store = model over random op sequences"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 60)
       (QCheck.triple (QCheck.int_bound 2) (QCheck.int_bound 9) QCheck.printable_string))
    (fun ops ->
      Testutil.with_temp_path ".log" (fun path ->
          let s = Storage.Log_store.create path in
          let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun (op, k, v) ->
              let key = "key" ^ string_of_int k in
              match op with
              | 0 ->
                s.Storage.Kv.put key v;
                Hashtbl.replace model key v
              | 1 ->
                let expected = Hashtbl.mem model key in
                let got = s.Storage.Kv.delete key in
                Hashtbl.remove model key;
                assert (expected = got)
              | _ -> assert (s.Storage.Kv.get key = Hashtbl.find_opt model key))
            ops;
          (* reopen and compare against the model *)
          s.Storage.Kv.close ();
          let s2 = Storage.Log_store.open_existing path in
          let ok =
            Hashtbl.fold
              (fun k v acc -> acc && s2.Storage.Kv.get k = Some v)
              model
              (s2.Storage.Kv.length () = Hashtbl.length model)
          in
          s2.Storage.Kv.close ();
          ok))

let prop_btree_model =
  Testutil.qcheck_case ~count:40 ~name:"btree = model over random op sequences"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 120)
       (QCheck.triple (QCheck.int_bound 2) (QCheck.int_bound 30) QCheck.printable_string))
    (fun ops ->
      Testutil.with_temp_path ".tcb" (fun path ->
          let s = Storage.Btree_store.create ~page_size:256 path in
          let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
          let ok = ref true in
          List.iter
            (fun (op, k, v) ->
              let key = Printf.sprintf "k%02d" k in
              match op with
              | 0 ->
                s.Storage.Kv.put key v;
                Hashtbl.replace model key v
              | 1 ->
                let expected = Hashtbl.mem model key in
                if s.Storage.Kv.delete key <> expected then ok := false;
                Hashtbl.remove model key
              | _ -> if s.Storage.Kv.get key <> Hashtbl.find_opt model key then ok := false)
            ops;
          (* iteration remains sorted and complete *)
          let keys = ref [] in
          s.Storage.Kv.iter (fun k _ -> keys := k :: !keys);
          let keys = List.rev !keys in
          let sorted = List.sort String.compare keys in
          let model_keys =
            Hashtbl.fold (fun k _ acc -> k :: acc) model [] |> List.sort String.compare
          in
          s.Storage.Kv.close ();
          !ok && keys = sorted && sorted = model_keys))

(* --- golden payload fixtures: catch accidental format changes --- *)

let hex s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let test_codec_golden () =
  let w = C.writer () in
  C.write_varint w 300;
  C.write_string w "ab";
  C.write_int_array w [| 3; 10 |];
  check_string "codec layout stable" "ac02026162020306" (hex (C.contents w))

let test_crc32_golden () =
  (* standard test vector *)
  Alcotest.(check int32) "crc32 of '123456789'" 0xCBF43926l
    (Storage.Checksum.crc32 "123456789");
  Alcotest.(check int32) "crc32 of empty" 0l (Storage.Checksum.crc32 "")

(* --- pager --- *)

let test_pager_basic () =
  Testutil.with_temp_path ".pg" (fun path ->
      let p = Storage.Pager.create ~page_size:256 path in
      let mk c = Bytes.make 256 c in
      let p0 = Storage.Pager.append_page p (mk 'a') in
      let p1 = Storage.Pager.append_page p (mk 'b') in
      check_int "page numbers" 0 p0;
      check_int "page numbers" 1 p1;
      check_int "count" 2 (Storage.Pager.page_count p);
      check_string "read back" (String.make 256 'b')
        (Bytes.to_string (Storage.Pager.read_page p 1));
      Storage.Pager.write_page p 0 (mk 'z');
      check_string "overwrite" (String.make 256 'z')
        (Bytes.to_string (Storage.Pager.read_page p 0));
      Storage.Pager.close p)

let test_pager_blob () =
  Testutil.with_temp_path ".pg" (fun path ->
      let p = Storage.Pager.create ~page_size:128 path in
      let blob = String.init 1000 (fun i -> Char.chr (i land 0xff)) in
      let first = Storage.Pager.append_blob p blob in
      check_string "blob roundtrip" blob
        (Storage.Pager.read_blob p ~first_page:first ~len:1000);
      check_string "empty blob" ""
        (Storage.Pager.read_blob p ~first_page:first ~len:0);
      Storage.Pager.close p)

let test_pager_bounds () =
  Testutil.with_temp_path ".pg" (fun path ->
      let p = Storage.Pager.create ~page_size:128 path in
      (match Storage.Pager.read_page p 0 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected out-of-bounds");
      (match Storage.Pager.write_page p 0 (Bytes.create 5) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected size mismatch");
      Storage.Pager.close p)

let test_pager_cache_hits () =
  Testutil.with_temp_path ".pg" (fun path ->
      let p = Storage.Pager.create ~page_size:128 ~cache_pages:4 path in
      let pg = Storage.Pager.append_page p (Bytes.make 128 'x') in
      ignore (Storage.Pager.read_page p pg);
      ignore (Storage.Pager.read_page p pg);
      check_bool "cache hit recorded" true
        (Storage.Io_stats.hits (Storage.Pager.stats p) >= 1);
      Storage.Pager.close p)

(* --- io stats --- *)

let test_io_stats_merge_and_ratio () =
  let a = Storage.Io_stats.create () and b = Storage.Io_stats.create () in
  Storage.Io_stats.record_read a ~bytes:10;
  Storage.Io_stats.record_hit a;
  Storage.Io_stats.record_miss b;
  Storage.Io_stats.record_write b ~bytes:7;
  let m = Storage.Io_stats.merge a b in
  check_int "reads" 1 (Storage.Io_stats.reads m);
  check_int "writes" 1 (Storage.Io_stats.writes m);
  check_int "bytes" 10 (Storage.Io_stats.bytes_read m);
  Alcotest.(check (float 0.001)) "ratio" 0.5 (Storage.Io_stats.hit_ratio m);
  Alcotest.(check (float 0.001)) "empty ratio" 0.
    (Storage.Io_stats.hit_ratio (Storage.Io_stats.create ()))

let () =
  Alcotest.run "storage"
    [
      ( "codec",
        [
          Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "varint negative" `Quick test_varint_negative_rejected;
          Alcotest.test_case "int array roundtrip" `Quick test_int_array_roundtrip;
          Alcotest.test_case "monotonicity enforced" `Quick
            test_int_array_monotone_enforced;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "corruption detection" `Quick test_corrupt_detection;
          prop_int_list_roundtrip;
          prop_mixed_stream;
        ] );
      ( "bitpack",
        [
          Alcotest.test_case "roundtrip cases" `Quick test_bitpack_roundtrip_cases;
          Alcotest.test_case "validation" `Quick test_bitpack_validation;
          Alcotest.test_case "size estimate" `Quick test_bitpack_size_estimate;
          Alcotest.test_case "corrupt" `Quick test_bitpack_corrupt;
          prop_bitpack_roundtrip;
        ] );
      ("mem store", store_suite "mem" mem_store);
      ("hash store", store_suite "hash" hash_store);
      ("btree store", store_suite "btree" btree_store);
      ("log store", store_suite "log" log_store);
      ( "persistence",
        [
          Alcotest.test_case "hash reopen" `Quick test_hash_reopen;
          Alcotest.test_case "btree reopen" `Quick test_btree_reopen;
          Alcotest.test_case "btree sorted iter + range" `Quick
            test_btree_sorted_iter_and_range;
          Alcotest.test_case "hash io stats" `Quick test_hash_io_stats_count;
          Alcotest.test_case "closed store raises" `Quick test_hash_closed_raises;
        ] );
      ( "btree model",
        [ prop_btree_model ] );
      ( "golden formats",
        [
          Alcotest.test_case "codec layout" `Quick test_codec_golden;
          Alcotest.test_case "crc32 vectors" `Quick test_crc32_golden;
        ] );
      ( "log store recovery",
        [
          Alcotest.test_case "reopen" `Quick test_log_reopen;
          Alcotest.test_case "torn tail" `Quick test_log_torn_tail_recovery;
          Alcotest.test_case "corrupt middle" `Quick test_log_corrupt_middle_truncates;
          Alcotest.test_case "compaction" `Quick test_log_compaction;
          prop_log_store_model;
        ] );
      ( "pager",
        [
          Alcotest.test_case "basic" `Quick test_pager_basic;
          Alcotest.test_case "blob" `Quick test_pager_blob;
          Alcotest.test_case "bounds" `Quick test_pager_bounds;
          Alcotest.test_case "cache hits" `Quick test_pager_cache_hits;
        ] );
      ( "io stats",
        [ Alcotest.test_case "merge & ratio" `Quick test_io_stats_merge_and_ratio ] );
    ]
