(* Tests for the extensions beyond the paper's core: the external-memory
   stack, streamed blocked list processing, incremental index maintenance,
   the similarity join, selectivity-ordered top-down, and the explain/join
   engine APIs. *)

module E = Containment.Engine
module S = Containment.Semantics
module IF = Invfile.Inverted_file

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_records = Alcotest.(check (list int))

(* --- Ext_stack --- *)

let with_ext_stack ?buffer_items f () =
  Testutil.with_temp_path ".stk" (fun path ->
      let s = Storage.Ext_stack.create ?buffer_items path in
      Fun.protect ~finally:(fun () -> Storage.Ext_stack.close s) (fun () -> f s))

let test_ext_stack_lifo =
  with_ext_stack ~buffer_items:4 (fun s ->
      for i = 1 to 20 do
        Storage.Ext_stack.push s (string_of_int i)
      done;
      check_int "length" 20 (Storage.Ext_stack.length s);
      check_bool "spilled to disk" true (Storage.Ext_stack.spilled_items s > 0);
      for i = 20 downto 1 do
        Alcotest.(check (option string))
          "lifo order"
          (Some (string_of_int i))
          (Storage.Ext_stack.pop s)
      done;
      check_bool "empty" true (Storage.Ext_stack.is_empty s);
      Alcotest.(check (option string)) "pop empty" None (Storage.Ext_stack.pop s))

let test_ext_stack_interleaved =
  with_ext_stack ~buffer_items:2 (fun s ->
      (* mixed pushes and pops across spill boundaries *)
      let model = Stack.create () in
      let rng = Random.State.make [| 99 |] in
      for i = 0 to 500 do
        if Random.State.bool rng then begin
          let v = "v" ^ string_of_int i in
          Storage.Ext_stack.push s v;
          Stack.push v model
        end
        else begin
          let expected = Stack.pop_opt model in
          let got = Storage.Ext_stack.pop s in
          if expected <> got then
            Alcotest.failf "divergence at step %d: model %s, got %s" i
              (Option.value ~default:"-" expected)
              (Option.value ~default:"-" got)
        end
      done;
      check_int "final lengths agree" (Stack.length model) (Storage.Ext_stack.length s))

let test_ext_stack_top_and_clear =
  with_ext_stack ~buffer_items:2 (fun s ->
      List.iter (Storage.Ext_stack.push s) [ "a"; "b"; "c"; "d"; "e" ];
      Alcotest.(check (option string)) "top" (Some "e") (Storage.Ext_stack.top s);
      check_int "top does not pop" 5 (Storage.Ext_stack.length s);
      Storage.Ext_stack.clear s;
      check_bool "cleared" true (Storage.Ext_stack.is_empty s);
      Storage.Ext_stack.push s "again";
      Alcotest.(check (option string)) "usable after clear" (Some "again")
        (Storage.Ext_stack.pop s))

let test_ext_stack_binary_payloads =
  with_ext_stack ~buffer_items:1 (fun s ->
      let payloads = [ ""; "\x00\x01\x02"; String.make 10_000 '\xff' ] in
      List.iter (Storage.Ext_stack.push s) payloads;
      List.iter
        (fun expected ->
          Alcotest.(check (option string)) "binary" (Some expected)
            (Storage.Ext_stack.pop s))
        (List.rev payloads))

(* --- Plist_stream --- *)

let plist specs =
  Invfile.Plist.of_list
    (List.map
       (fun n ->
         { Invfile.Posting.node = n; children = [| n + 1 |]; leaf_count = 1; post = n; parent = -1 })
       specs)

let test_stream_cursor () =
  let l = plist [ 2; 5; 9 ] in
  let c = Invfile.Plist_stream.cursor_of_bytes (Invfile.Plist.to_bytes l) in
  check_int "remaining" 3 (Invfile.Plist_stream.remaining c);
  (match Invfile.Plist_stream.peek c with
  | Some p -> check_int "peek" 2 p.Invfile.Posting.node
  | None -> Alcotest.fail "peek");
  check_int "peek does not consume" 3 (Invfile.Plist_stream.remaining c);
  (match Invfile.Plist_stream.skip_to c 6 with
  | Some p -> check_int "skip_to lands on 9" 9 p.Invfile.Posting.node
  | None -> Alcotest.fail "skip_to");
  ignore (Invfile.Plist_stream.next c);
  check_bool "exhausted" true (Invfile.Plist_stream.next c = None)

let test_stream_inter_matches_plist () =
  let a = plist [ 1; 3; 5; 7; 9; 100 ] in
  let b = plist [ 3; 4; 7; 100 ] in
  let c = plist [ 3; 7; 42; 100 ] in
  let enc l = Invfile.Plist.to_bytes l in
  let streamed = Invfile.Plist_stream.inter_many [ enc a; enc b; enc c ] in
  let materialized = Invfile.Plist.inter_many [ a; b; c ] in
  Alcotest.(check (list int))
    "same intersection"
    (Array.to_list (Invfile.Plist.nodes materialized))
    (Array.to_list (Invfile.Plist.nodes streamed))

let prop_stream_inter =
  Testutil.qcheck_case ~name:"streamed = materialized intersection"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 40) (QCheck.int_bound 60))
       (QCheck.list_of_size (QCheck.Gen.int_range 0 40) (QCheck.int_bound 60)))
    (fun (xs, ys) ->
      let mk l = plist (List.sort_uniq Int.compare l) in
      let a = mk xs and b = mk ys in
      let streamed =
        Invfile.Plist_stream.inter_many
          [ Invfile.Plist.to_bytes a; Invfile.Plist.to_bytes b ]
      in
      Invfile.Plist.nodes streamed = Invfile.Plist.nodes (Invfile.Plist.inter a b))

let prop_stream_union =
  Testutil.qcheck_case ~name:"streamed = materialized union-with-counts"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 30) (QCheck.int_bound 40))
       (QCheck.list_of_size (QCheck.Gen.int_range 0 30) (QCheck.int_bound 40)))
    (fun (xs, ys) ->
      let mk l = plist (List.sort_uniq Int.compare l) in
      let a = mk xs and b = mk ys in
      let streamed =
        Invfile.Plist_stream.union_with_counts
          [ Invfile.Plist.to_bytes a; Invfile.Plist.to_bytes b ]
      in
      let materialized = Invfile.Plist.union_with_counts [ a; b ] in
      Array.map (fun (p, c) -> (p.Invfile.Posting.node, c)) streamed
      = Array.map (fun (p, c) -> (p.Invfile.Posting.node, c)) materialized)

(* --- Updater --- *)

let test_updater_add () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let id =
    Invfile.Updater.add_string inv "{Utrecht, NL, {NL, {B, car}}, {UK, {A, motorbike}}}"
  in
  check_int "new record id" 4 id;
  check_int "count" 5 (IF.record_count inv);
  (* new record is found by queries *)
  check_records "joins existing results" [ 0; 1; 3; 4 ]
    (E.query inv (Testutil.v "{{UK, {A, motorbike}}}")).E.records;
  check_records "new atoms indexed" [ 4 ] (E.query inv (Testutil.v "{Utrecht}")).E.records;
  (* ids remain consistent *)
  check_int "root of new record" 20 (IF.roots inv).(4);
  Alcotest.check Testutil.value_testable "stored value"
    (Testutil.v "{Utrecht, NL, {NL, {B, car}}, {UK, {A, motorbike}}}")
    (IF.record_value inv 4)

let test_updater_add_matches_rebuild () =
  (* incrementally built index answers exactly like a from-scratch build *)
  let base = List.filteri (fun i _ -> i < 2) Testutil.licences_strings in
  let extra = List.filteri (fun i _ -> i >= 2) Testutil.licences_strings in
  let incremental = Testutil.mem_collection base in
  List.iter (fun s -> ignore (Invfile.Updater.add_string incremental s)) extra;
  let scratch = Testutil.mem_collection Testutil.licences_strings in
  List.iter
    (fun qs ->
      let q = Testutil.v qs in
      check_records ("same results for " ^ qs)
        (E.query scratch q).E.records
        (E.query incremental q).E.records)
    [ "{{UK, {A, motorbike}}}"; "{USA}"; "{Paris, FR}"; "{{FR, {B}}}"; "{Mars}" ];
  (* node table stayed consistent (leafless query exercises it) *)
  check_records "leafless query"
    (E.query scratch (Testutil.v "{{}}")).E.records
    (E.query incremental (Testutil.v "{{}}")).E.records

let test_updater_delete () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  check_bool "delete record 1" true (Invfile.Updater.delete_record inv 1);
  check_bool "already deleted" false (Invfile.Updater.delete_record inv 1);
  check_bool "is_deleted" true (Invfile.Updater.is_deleted inv 1);
  check_bool "others alive" false (Invfile.Updater.is_deleted inv 0);
  (* Tim no longer matches anything *)
  check_records "Tim gone" [] (E.query inv (Testutil.v "{Boston}")).E.records;
  check_records "others unaffected" [ 0; 3 ]
    (E.query inv (Testutil.v "{{UK, {A, motorbike}}}")).E.records;
  (* record ids of others unchanged *)
  check_records "Paris still record 2" [ 2 ] (E.query inv (Testutil.v "{Paris}")).E.records

let test_updater_delete_then_add () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  ignore (Invfile.Updater.delete_record inv 0);
  let id = Invfile.Updater.add_string inv "{London, NEW}" in
  check_int "fresh id, slots not reused" 4 id;
  check_records "London only in the new record" [ 4 ]
    (E.query inv (Testutil.v "{London}")).E.records

let test_updater_cache_invalidation () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  Containment.Collection.with_static_cache inv ~budget:50;
  (* warm the cache *)
  ignore (E.query inv (Testutil.v "{{UK, {A, motorbike}}}"));
  ignore (Invfile.Updater.add_string inv "{X, {UK, {A, motorbike}}}");
  check_records "cached lists invalidated on update" [ 0; 1; 3; 4 ]
    (E.query inv (Testutil.v "{{UK, {A, motorbike}}}")).E.records

let prop_updater_equivalent_to_rebuild =
  Testutil.qcheck_case ~count:100 ~name:"incremental = rebuilt (random splits)"
    (QCheck.pair (Testutil.arbitrary_collection ~records:10 ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (List.length values >= 2);
      let k = List.length values / 2 in
      let base = List.filteri (fun i _ -> i < k) values in
      let extra = List.filteri (fun i _ -> i >= k) values in
      let incremental = Containment.Collection.of_values base in
      List.iter (fun v -> ignore (Invfile.Updater.add_value incremental v)) extra;
      let scratch = Containment.Collection.of_values values in
      (E.query incremental q).E.records = (E.query scratch q).E.records)

(* --- Merger --- *)

let queries_for_merge =
  [ "{{UK, {A, motorbike}}}"; "{USA}"; "{Paris, FR}"; "{Mars}"; "{{}}";
    "{London, UK, {UK, {A, B, C, car, motorbike}}, {UK, {A, motorbike}}}" ]

let assert_same_answers a b =
  List.iter
    (fun qs ->
      let q = Testutil.v qs in
      check_records ("merge answers agree for " ^ qs)
        (E.query a q).E.records
        (E.query b q).E.records)
    queries_for_merge

let test_merger_equals_scratch () =
  let first = List.filteri (fun i _ -> i < 2) Testutil.licences_strings in
  let second = List.filteri (fun i _ -> i >= 2) Testutil.licences_strings in
  let dst = Testutil.mem_collection first in
  let src = Testutil.mem_collection second in
  Invfile.Merger.append ~dst ~src;
  let scratch = Testutil.mem_collection Testutil.licences_strings in
  check_int "record count" 4 (IF.record_count dst);
  check_int "node count" (IF.node_count scratch) (IF.node_count dst);
  check_int "atom count" (IF.atom_count scratch) (IF.atom_count dst);
  Alcotest.(check (array int)) "roots" (IF.roots scratch) (IF.roots dst);
  assert_same_answers scratch dst;
  (* postings agree exactly *)
  List.iter
    (fun atom ->
      check_bool ("postings equal for " ^ atom) true
        (IF.lookup scratch atom = IF.lookup dst atom))
    [ "UK"; "A"; "motorbike"; "Paris"; "Austin" ]

let test_merger_skips_tombstones () =
  let dst = Testutil.mem_collection (List.filteri (fun i _ -> i < 1) Testutil.licences_strings) in
  let src = Testutil.mem_collection (List.filteri (fun i _ -> i >= 1) Testutil.licences_strings) in
  (* delete Tim (src record 0) before merging *)
  check_bool "delete in src" true (Invfile.Updater.delete_record src 0);
  Invfile.Merger.append ~dst ~src;
  check_int "only live records copied" 3 (IF.record_count dst);
  check_records "Tim gone" [] (E.query dst (Testutil.v "{Boston}")).E.records;
  check_records "Paris carried over" [ 1 ] (E.query dst (Testutil.v "{Paris}")).E.records;
  (* updates still work after a merge *)
  let id = Invfile.Updater.add_string dst "{Oslo, NO}" in
  check_records "post-merge insert" [ id ] (E.query dst (Testutil.v "{Oslo}")).E.records

let test_merger_repeated () =
  (* fold three shards together *)
  let shard l = Testutil.mem_collection l in
  let dst = shard [ List.nth Testutil.licences_strings 0 ] in
  Invfile.Merger.append ~dst ~src:(shard [ List.nth Testutil.licences_strings 1 ]);
  Invfile.Merger.append ~dst ~src:(shard [ List.nth Testutil.licences_strings 2 ]);
  Invfile.Merger.append ~dst ~src:(shard [ List.nth Testutil.licences_strings 3 ]);
  assert_same_answers (Testutil.mem_collection Testutil.licences_strings) dst

let prop_merger_equals_scratch =
  Testutil.qcheck_case ~count:80 ~name:"merged shards = scratch build"
    (QCheck.triple (Testutil.arbitrary_collection ~records:6 ())
       (Testutil.arbitrary_collection ~records:6 ())
       Testutil.arbitrary_leafy_value)
    (fun (a, b, q) ->
      let a = List.filter Nested.Value.is_set a
      and b = List.filter Nested.Value.is_set b in
      QCheck.assume (a <> [] && b <> []);
      let dst = Containment.Collection.of_values a in
      let src = Containment.Collection.of_values b in
      Invfile.Merger.append ~dst ~src;
      let scratch = Containment.Collection.of_values (a @ b) in
      (E.query dst q).E.records = (E.query scratch q).E.records
      && IF.roots dst = IF.roots scratch)

(* --- integrity checker --- *)

let test_integrity_clean_and_after_updates () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  Alcotest.(check int) "fresh collection clean" 0
    (List.length (Invfile.Integrity.check inv));
  ignore (Invfile.Updater.add_string inv "{Oslo, NO, {NO, {B}}}");
  ignore (Invfile.Updater.delete_record inv 1);
  Alcotest.(check int) "clean after updates" 0
    (List.length (Invfile.Integrity.check inv));
  let dst = inv in
  Invfile.Merger.append ~dst ~src:(Testutil.mem_collection [ "{merged, m}" ]);
  Alcotest.(check int) "clean after merge" 0
    (List.length (Invfile.Integrity.check dst))

let test_integrity_detects_corruption () =
  let broken what mutate =
    let inv = Testutil.mem_collection Testutil.licences_strings in
    mutate inv;
    if Invfile.Integrity.check inv = [] then
      Alcotest.failf "%s not detected" what
  in
  broken "missing list" (fun inv ->
      ignore ((IF.store inv).Storage.Kv.delete "aLondon"));
  broken "phantom list" (fun inv ->
      (IF.store inv).Storage.Kv.put "aPhantom"
        (Invfile.Plist.to_bytes
           (Invfile.Plist.of_list
              [ { Invfile.Posting.node = 0; children = [||]; leaf_count = 1;
                  post = 0; parent = -1 } ])));
  broken "stale posting" (fun inv ->
      let l = IF.lookup inv "London" in
      let extra =
        { Invfile.Posting.node = 9; children = [||]; leaf_count = 1; post = 4;
          parent = -1 }
      in
      (IF.store inv).Storage.Kv.put "aLondon"
        (Invfile.Plist.to_bytes (Array.append l [| extra |])));
  broken "tampered record" (fun inv ->
      (IF.store inv).Storage.Kv.put "r:0" "S{tampered}")

(* --- hash store optimize --- *)

let test_hash_optimize () =
  Testutil.with_temp_path ".tch" (fun path ->
      let s = Storage.Hash_store.create ~buckets:64 path in
      for i = 0 to 199 do
        s.Storage.Kv.put "churn" (String.make 100 (Char.chr (65 + (i mod 26))))
      done;
      s.Storage.Kv.put "keep" "me";
      ignore (s.Storage.Kv.delete "churn");
      let before = Storage.Hash_store.file_size s in
      Storage.Hash_store.optimize s;
      let after = Storage.Hash_store.file_size s in
      check_bool "file shrank" true (after < before);
      Alcotest.(check (option string)) "live data intact" (Some "me")
        (s.Storage.Kv.get "keep");
      check_int "count" 1 (s.Storage.Kv.length ());
      (* still works after optimize, and survives reopen *)
      s.Storage.Kv.put "new" "entry";
      s.Storage.Kv.close ();
      let s2 = Storage.Hash_store.open_existing path in
      Alcotest.(check (option string)) "reopen" (Some "entry") (s2.Storage.Kv.get "new");
      s2.Storage.Kv.close ())

(* --- similarity join --- *)

let test_similarity_thresholds () =
  let inv = Testutil.mem_collection [ "{a, b, c, d}"; "{a, b, x, y}"; "{a, x, y, z}" ] in
  let q = Testutil.v "{a, b, c, d}" in
  let at r =
    (E.query ~config:{ E.default with E.join = S.Similarity r } inv q).E.records
  in
  check_records "r=1.0 (all four)" [ 0 ] (at 1.0);
  check_records "r=0.5 (two of four)" [ 0; 1 ] (at 0.5);
  check_records "r=0.25 (one of four)" [ 0; 1; 2 ] (at 0.25)

let test_similarity_nested () =
  let inv = Testutil.mem_collection [ "{a, b, {c, d}}"; "{a, b, {c, x}}" ] in
  let q = Testutil.v "{a, b, {c, d}}" in
  let at r =
    (E.query ~config:{ E.default with E.join = S.Similarity r } inv q).E.records
  in
  check_records "r=1 needs full overlap at every node" [ 0 ] (at 1.0);
  check_records "r=0.5" [ 0; 1 ] (at 0.5)

let test_similarity_validation () =
  let inv = Testutil.mem_collection [ "{a}" ] in
  match E.query ~config:{ E.default with E.join = S.Similarity 1.5 } inv (Testutil.v "{a}") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ratio > 1 must be rejected"

let prop_similarity_matches_oracle =
  Testutil.qcheck_case ~count:150 ~name:"similarity = oracle"
    (QCheck.triple (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value
       (QCheck.oneofl [ 0.3; 0.5; 1.0 ]))
    (fun (values, q, r) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let got =
        (E.query ~config:{ E.default with E.join = S.Similarity r } inv q).E.records
      in
      let expected =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, s) ->
               if Containment.Embed.check (S.Similarity r) S.Hom ~q ~s then Some i
               else None)
      in
      got = expected)

let prop_similarity_1_equals_containment_on_flat =
  Testutil.qcheck_case ~count:100 ~name:"similarity 1.0 = containment on flat sets"
    (Testutil.arbitrary_collection ())
    (fun values ->
      let values =
        List.filter
          (fun v -> Nested.Value.is_set v && Nested.Value.subsets v = [])
          values
      in
      QCheck.assume (values <> []);
      let q = List.hd values in
      QCheck.assume (Nested.Value.leaves q <> []);
      let inv = Containment.Collection.of_values values in
      (E.query ~config:{ E.default with E.join = S.Similarity 1.0 } inv q).E.records
      = (E.query inv q).E.records)

(* --- selectivity ordering --- *)

let prop_td_order_irrelevant_for_results =
  Testutil.qcheck_case ~count:150 ~name:"selectivity order preserves results"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let base =
        (E.query ~config:{ E.default with E.algorithm = E.Top_down } inv q).E.records
      in
      let ordered =
        (E.query
           ~config:
             {
               E.default with
               E.algorithm = E.Top_down;
               E.td_order = Containment.Top_down.Selectivity;
             }
           inv q)
          .E.records
      in
      base = ordered)

(* --- low-memory modes (the paper's 'other assumptions') --- *)

let prop_streamed_equals_materialized =
  Testutil.qcheck_case ~count:150 ~name:"streamed candidates = materialized (all joins)"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      List.for_all
        (fun join ->
          let base = { E.default with E.join } in
          (E.query ~config:base inv q).E.records
          = (E.query ~config:{ base with E.streamed = true } inv q).E.records)
        [ S.Containment; S.Superset; S.Overlap 1; S.Overlap 2; S.Similarity 0.5 ])

let test_spill_to_equals_in_memory () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  Testutil.with_temp_path ".stk" (fun path ->
      List.iter
        (fun qs ->
          let q = Testutil.v qs in
          check_records ("spilled = in-memory for " ^ qs)
            (E.query inv q).E.records
            (E.query ~config:{ E.default with E.spill_to = Some path } inv q).E.records)
        [ "{{UK, {A, motorbike}}}"; "{USA, {UK, {A, motorbike}}}"; "{Mars}"; "{{}}" ])

let prop_spill_to_equivalent =
  Testutil.qcheck_case ~count:100 ~name:"external stack = in-memory stack"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      Testutil.with_temp_path ".stk" (fun path ->
          (E.query inv q).E.records
          = (E.query ~config:{ E.default with E.spill_to = Some path } inv q).E.records))

let test_tombstones_and_scans () =
  (* regression: the naive scan and the Bloom prefilter must skip
     tombstoned records rather than fail on them (found by fuzz/fuzz.exe) *)
  let inv = Testutil.mem_collection Testutil.licences_strings in
  ignore (Invfile.Updater.delete_record inv 1);
  let q = Testutil.v "{{UK, {A, motorbike}}}" in
  check_records "naive skips tombstones" [ 0; 3 ]
    (E.query ~config:{ E.default with E.algorithm = E.Naive_scan } inv q).E.records;
  let fi = Containment.Filter_index.build inv in
  check_records "prefilter skips tombstones" [ 0; 3 ]
    (E.query ~config:{ E.default with E.filter_index = Some fi } inv q).E.records;
  check_records "anywhere scope too" [ 0; 3 ]
    (E.query
       ~config:{ E.default with E.algorithm = E.Naive_scan; E.scope = E.Anywhere }
       inv (Testutil.v "{UK, {A, motorbike}}"))
      .E.records

(* --- signature-scan baseline --- *)

let test_signature_scan_matches_indexed () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let fi = Containment.Filter_index.build inv in
  let config =
    { E.default with E.algorithm = E.Signature_scan; E.filter_index = Some fi }
  in
  List.iter
    (fun qs ->
      let q = Testutil.v qs in
      check_records ("signature = indexed for " ^ qs)
        (E.query inv q).E.records
        (E.query ~config inv q).E.records)
    [ "{{UK, {A, motorbike}}}"; "{USA}"; "{Mars}"; "{Paris, FR}"; "{{}}" ]

let test_signature_scan_requires_filter () =
  let inv = Testutil.mem_collection [ "{a}" ] in
  match
    E.query ~config:{ E.default with E.algorithm = E.Signature_scan } inv (Testutil.v "{a}")
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument without a filter index"

let prop_signature_scan_equivalent =
  Testutil.qcheck_case ~count:100 ~name:"signature scan = bottom-up"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let fi = Containment.Filter_index.build inv in
      let config =
        { E.default with E.algorithm = E.Signature_scan; E.filter_index = Some fi }
      in
      (E.query inv q).E.records = (E.query ~config inv q).E.records)

(* --- multicore execution --- *)

let test_parallel_matches_sequential () =
  Testutil.with_temp_path ".tch" (fun path ->
      let store = Storage.Hash_store.create ~buckets:256 path in
      let builder = Invfile.Builder.create store in
      List.iter
        (fun s -> ignore (Invfile.Builder.add_string builder s))
        Testutil.licences_strings;
      let inv0 = Invfile.Builder.finish builder in
      let queries =
        List.map Testutil.v
          [ "{{UK, {A, motorbike}}}"; "{USA}"; "{Mars}"; "{Paris}"; "{{FR, {B}}}" ]
      in
      let seq_stats = E.run_workload inv0 queries in
      IF.close inv0;
      let open_handle () = IF.open_store (Storage.Hash_store.open_existing path) in
      List.iter
        (fun domains ->
          let par =
            Containment.Parallel.run_workload ~domains ~open_handle ~cache_budget:10
              queries
          in
          check_int
            (Printf.sprintf "results equal at %d domains" domains)
            seq_stats.E.results_total par.Containment.Parallel.results_total;
          check_int
            (Printf.sprintf "positives equal at %d domains" domains)
            seq_stats.E.positives par.Containment.Parallel.positives)
        [ 1; 2; 3 ])

(* --- query minimization --- *)

let test_minimize_examples () =
  let m s = Nested.Syntax.to_string (Containment.Minimize.minimize (Testutil.v s)) in
  (* {a} is implied by {a, b} *)
  Alcotest.(check string) "weaker sibling dropped" "{x, {a, b}}" (m "{x, {a}, {a, b}}");
  (* structure-implied: {a} implied by {a, {c}} *)
  Alcotest.(check string) "shallow implied by deep" "{{a, {c}}}" (m "{{a}, {a, {c}}}");
  (* incomparable siblings both stay *)
  Alcotest.(check string) "incomparable kept" "{{a}, {b}}" (m "{{a}, {b}}");
  (* recursion reaches inner levels *)
  Alcotest.(check string) "inner minimization" "{{x, {a, b}}}" (m "{{x, {a}, {a, b}}}");
  (* already-minimal values untouched *)
  Alcotest.(check bool) "is_minimal" true
    (Containment.Minimize.is_minimal (Testutil.v "{a, {b}, {c}}"))

let prop_minimize_preserves_answers =
  Testutil.qcheck_case ~count:200 ~name:"minimized query ≡ original (hom/homeo)"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      List.for_all
        (fun embedding ->
          let plain =
            (E.query ~config:{ E.default with E.embedding } inv q).E.records
          in
          let minimized =
            (E.query ~config:{ E.default with E.embedding; E.minimize = true } inv q)
              .E.records
          in
          plain = minimized)
        [ S.Hom; S.Homeo; S.Homeo_full ])

let prop_minimize_idempotent_and_smaller =
  Testutil.qcheck_case ~count:200 ~name:"minimize is idempotent and non-increasing"
    Testutil.arbitrary_value (fun q ->
      QCheck.assume (Nested.Value.is_set q);
      let m = Containment.Minimize.minimize q in
      Containment.Minimize.is_minimal m
      && Nested.Value.internal_count m <= Nested.Value.internal_count q)

(* --- wildcard (prefix) query leaves --- *)

let wc config = { config with E.wildcards = true }

let test_wildcard_basic () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  check_records "prefix at root" [ 0 ]
    (E.query ~config:(wc E.default) inv (Testutil.v "{Lon*}")).E.records;
  check_records "prefix inside structure" [ 0; 1; 3 ]
    (E.query ~config:(wc E.default) inv (Testutil.v "{{UK, {A, moto*}}}")).E.records;
  check_records "prefix with no match" []
    (E.query ~config:(wc E.default) inv (Testutil.v "{Zz*}")).E.records;
  (* multiple atoms share the prefix: USA matches U* as does UK *)
  check_records "broad prefix" [ 0; 1; 3 ]
    (E.query ~config:(wc E.default) inv (Testutil.v "{U*}")).E.records;
  (* bare star matches any leaf *)
  check_records "bare star" [ 0; 1; 2; 3 ]
    (E.query ~config:(wc E.default) inv (Testutil.v "{*}")).E.records;
  (* without the flag, '*' is an ordinary atom *)
  check_records "literal star without flag" []
    (E.query inv (Testutil.v "{Lon*}")).E.records

let test_wildcard_btree_range_path () =
  Testutil.with_temp_path ".tcb" (fun path ->
      let inv =
        Containment.Collection.of_strings
          ~backend:(Containment.Collection.Btree path) Testutil.licences_strings
      in
      Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
      Alcotest.(check (list string))
        "ordered prefix scan" [ "UK"; "USA" ]
        (IF.atoms_with_prefix inv "U");
      check_records "wildcard query over btree" [ 0; 1; 3 ]
        (E.query ~config:(wc E.default) inv (Testutil.v "{U*}")).E.records)

let test_wildcard_unsupported_joins () =
  let inv = Testutil.mem_collection [ "{a}" ] in
  match
    E.query ~config:(wc { E.default with E.join = S.Superset }) inv (Testutil.v "{a*}")
  with
  | exception S.Unsupported _ -> ()
  | _ -> Alcotest.fail "wildcards must be containment-only"

let prop_wildcard_algorithms_agree =
  Testutil.qcheck_case ~count:150 ~name:"wildcards: BU = TD = naive"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value)
    (fun (values, q) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      (* turn some leaves into prefixes *)
      let q =
        Nested.Value.map_atoms
          (fun a -> if String.length a > 0 && a.[0] <= 'd' then String.sub a 0 1 ^ "*" else a)
          q
      in
      let inv = Containment.Collection.of_values values in
      let run algorithm =
        (E.query ~config:(wc { E.default with E.algorithm }) inv q).E.records
      in
      let bu = run E.Bottom_up in
      bu = run E.Top_down && bu = run E.Naive_scan)

let prop_wildcard_generalizes_exact =
  Testutil.qcheck_case ~count:100 ~name:"prefix query ⊇ exact query"
    (Testutil.arbitrary_collection ())
    (fun values ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let q = List.hd values in
      let q_wild = Nested.Value.map_atoms (fun a -> a ^ "*") q in
      let inv = Containment.Collection.of_values values in
      let exact = (E.query inv q).E.records in
      let wild = (E.query ~config:(wc E.default) inv q_wild).E.records in
      List.for_all (fun i -> List.mem i wild) exact)

let prop_preflight_preserves_results =
  Testutil.qcheck_case ~count:150 ~name:"preflight preserves results"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      (E.query inv q).E.records
      = (E.query ~config:{ E.default with E.preflight = true } inv q).E.records)

(* --- engine APIs --- *)

let test_containment_join () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let queries = [ Testutil.v "{Boston}"; Testutil.v "{Mars}"; Testutil.v "{USA}" ] in
  Alcotest.(check (list (pair int (list int))))
    "Q ⋈ S"
    [ (0, [ 1 ]); (1, []); (2, [ 1; 3 ]) ]
    (E.containment_join inv queries)

let test_witnesses () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let q = Testutil.v "{USA, {UK, {A, motorbike}}}" in
  (* Tim (root 5) and Austin (root 15) both match *)
  (match E.witnesses inv q with
  | [ (5, w); (15, _) ] ->
    check_int "three query nodes mapped" 3 (List.length w);
    Alcotest.(check (option int)) "root image" (Some 5) (List.assoc_opt "root" w);
    (* the child {UK, {A, motorbike}} maps to Tim's node 6 *)
    Alcotest.(check (option int)) "child image" (Some 6) (List.assoc_opt "root.0" w);
    Alcotest.(check (option int)) "grandchild image" (Some 7) (List.assoc_opt "root.0.0" w)
  | l -> Alcotest.failf "expected witnesses at roots 5 and 15, got %d" (List.length l));
  check_bool "no witnesses for a negative query" true (E.witnesses inv (Testutil.v "{Mars}") = [])

let prop_witnesses_are_valid_embeddings =
  Testutil.qcheck_case ~count:150 ~name:"witness images satisfy node conditions"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value)
    (fun (values, q) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let ws = E.witnesses inv q in
      List.for_all
        (fun (root, w) ->
          let record = IF.record_of_root inv root in
          let tree = IF.record_tree inv record in
          (* every image's subtree must contain the corresponding query
             subtree's leaves at its own node *)
          List.for_all
            (fun (_, id) -> Nested.Tree.mem_id tree id)
            w
          && List.assoc "root" w = root)
        ws)

let test_explain () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let plan = E.explain inv (Testutil.v "{USA, {UK, {A, motorbike}}}") in
  check_int "three query nodes" 3 (List.length plan);
  let root = List.hd plan in
  Alcotest.(check string) "path" "root" root.E.node_path;
  Alcotest.(check (list string)) "root leaves" [ "USA" ] root.E.leaves;
  check_int "USA occurs at 4 nodes" 4 root.E.candidate_count;
  let inner = List.nth plan 2 in
  check_bool "deepest node path" true (inner.E.node_path = "root.0.0")

let () =
  Alcotest.run "extensions"
    [
      ( "ext_stack",
        [
          Alcotest.test_case "lifo with spills" `Quick test_ext_stack_lifo;
          Alcotest.test_case "interleaved vs model" `Quick test_ext_stack_interleaved;
          Alcotest.test_case "top/clear" `Quick test_ext_stack_top_and_clear;
          Alcotest.test_case "binary payloads" `Quick test_ext_stack_binary_payloads;
        ] );
      ( "plist_stream",
        [
          Alcotest.test_case "cursor" `Quick test_stream_cursor;
          Alcotest.test_case "intersection" `Quick test_stream_inter_matches_plist;
          prop_stream_inter;
          prop_stream_union;
        ] );
      ( "updater",
        [
          Alcotest.test_case "add" `Quick test_updater_add;
          Alcotest.test_case "add matches rebuild" `Quick test_updater_add_matches_rebuild;
          Alcotest.test_case "delete" `Quick test_updater_delete;
          Alcotest.test_case "delete then add" `Quick test_updater_delete_then_add;
          Alcotest.test_case "cache invalidation" `Quick test_updater_cache_invalidation;
          Alcotest.test_case "tombstones in scans (fuzz regression)" `Quick
            test_tombstones_and_scans;
          prop_updater_equivalent_to_rebuild;
        ] );
      ( "merger",
        [
          Alcotest.test_case "equals scratch build" `Quick test_merger_equals_scratch;
          Alcotest.test_case "skips tombstones" `Quick test_merger_skips_tombstones;
          Alcotest.test_case "repeated merges" `Quick test_merger_repeated;
          prop_merger_equals_scratch;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "clean collections" `Quick
            test_integrity_clean_and_after_updates;
          Alcotest.test_case "detects corruption" `Quick
            test_integrity_detects_corruption;
        ] );
      ( "hash optimize",
        [ Alcotest.test_case "reclaims space" `Quick test_hash_optimize ] );
      ( "similarity",
        [
          Alcotest.test_case "thresholds" `Quick test_similarity_thresholds;
          Alcotest.test_case "nested" `Quick test_similarity_nested;
          Alcotest.test_case "validation" `Quick test_similarity_validation;
          prop_similarity_matches_oracle;
          prop_similarity_1_equals_containment_on_flat;
        ] );
      ( "ordering",
        [ prop_td_order_irrelevant_for_results ] );
      ( "minimization",
        [
          Alcotest.test_case "examples" `Quick test_minimize_examples;
          prop_minimize_preserves_answers;
          prop_minimize_idempotent_and_smaller;
        ] );
      ( "wildcards",
        [
          Alcotest.test_case "basics" `Quick test_wildcard_basic;
          Alcotest.test_case "btree range path" `Quick test_wildcard_btree_range_path;
          Alcotest.test_case "containment only" `Quick test_wildcard_unsupported_joins;
          prop_wildcard_algorithms_agree;
          prop_wildcard_generalizes_exact;
        ] );
      ( "preflight", [ prop_preflight_preserves_results ] );
      ( "low-memory modes",
        [
          prop_streamed_equals_materialized;
          Alcotest.test_case "spill_to basics" `Quick test_spill_to_equals_in_memory;
          prop_spill_to_equivalent;
        ] );
      ( "signature scan",
        [
          Alcotest.test_case "matches indexed" `Quick test_signature_scan_matches_indexed;
          Alcotest.test_case "requires filter" `Quick test_signature_scan_requires_filter;
          prop_signature_scan_equivalent;
        ] );
      ( "multicore",
        [ Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential ] );
      ( "engine apis",
        [
          Alcotest.test_case "containment_join" `Quick test_containment_join;
          Alcotest.test_case "witnesses" `Quick test_witnesses;
          prop_witnesses_are_valid_embeddings;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
    ]
