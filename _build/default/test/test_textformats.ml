(* Tests for the JSON and XML parsers/printers and the nested-set mappings. *)

module J = Textformats.Json
module X = Textformats.Xml

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_value = Alcotest.(check Testutil.value_testable)

let json_testable = Alcotest.testable J.pp J.equal
let xml_testable = Alcotest.testable X.pp X.equal

(* --- JSON parsing --- *)

let test_json_scalars () =
  Alcotest.check json_testable "null" J.Null (J.of_string "null");
  Alcotest.check json_testable "true" (J.Bool true) (J.of_string "true");
  Alcotest.check json_testable "false" (J.Bool false) (J.of_string " false ");
  Alcotest.check json_testable "int" (J.Number 42.) (J.of_string "42");
  Alcotest.check json_testable "negative" (J.Number (-7.5)) (J.of_string "-7.5");
  Alcotest.check json_testable "exponent" (J.Number 1200.) (J.of_string "1.2e3");
  Alcotest.check json_testable "string" (J.String "hi") (J.of_string "\"hi\"")

let test_json_structures () =
  Alcotest.check json_testable "array"
    (J.Array [ J.Number 1.; J.Number 2. ])
    (J.of_string "[1, 2]");
  Alcotest.check json_testable "empty array" (J.Array []) (J.of_string "[]");
  Alcotest.check json_testable "empty object" (J.Object []) (J.of_string "{}");
  Alcotest.check json_testable "nested"
    (J.Object [ ("a", J.Array [ J.Object [ ("b", J.Null) ] ]) ])
    (J.of_string "{\"a\": [{\"b\": null}]}")

let test_json_string_escapes () =
  check_string "basic escapes" "a\"b\\c\nd\te"
    (match J.of_string "\"a\\\"b\\\\c\\nd\\te\"" with
    | J.String s -> s
    | _ -> Alcotest.fail "not a string");
  check_string "unicode bmp" "\xc3\xa9"
    (match J.of_string "\"\\u00e9\"" with J.String s -> s | _ -> assert false);
  check_string "surrogate pair" "\xf0\x9f\x98\x80"
    (match J.of_string "\"\\ud83d\\ude00\"" with J.String s -> s | _ -> assert false)

let test_json_errors () =
  let fails s =
    match J.of_string_opt s with
    | None -> ()
    | Some v -> Alcotest.failf "%S parsed to %s" s (J.to_string v)
  in
  List.iter fails
    [
      "";
      "{";
      "[1,";
      "{\"a\" 1}";
      "{\"a\": }";
      "tru";
      "\"\\ud83d\"" (* unpaired surrogate *);
      "\"unterminated";
      "[1] trailing";
      "{\"a\":1,}";
    ]

let test_json_member_and_list () =
  let j = J.of_string "{\"a\": 1, \"b\": [2, 3]}" in
  check_bool "member a" true (J.member "a" j = Some (J.Number 1.));
  check_bool "member c" true (J.member "c" j = None);
  check_int "to_list" 2 (List.length (J.to_list (Option.get (J.member "b" j))))

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "[1,2.5,-3]";
      "{\"k\":\"v\",\"nested\":{\"arr\":[true,false,null]}}";
      "{\"text\":\"line\\nbreak\"}";
    ]
  in
  List.iter
    (fun s ->
      let j = J.of_string s in
      Alcotest.check json_testable ("roundtrip " ^ s) j (J.of_string (J.to_string j));
      (* pretty printing parses back too *)
      Alcotest.check json_testable ("pretty " ^ s) j
        (J.of_string (J.to_string ~pretty:true j)))
    cases

let test_json_equal_order_insensitive () =
  check_bool "field order" true
    (J.equal (J.of_string "{\"a\":1,\"b\":2}") (J.of_string "{\"b\":2,\"a\":1}"));
  check_bool "array order sensitive" false
    (J.equal (J.of_string "[1,2]") (J.of_string "[2,1]"))

(* --- XML parsing --- *)

let test_xml_basic () =
  let x = X.of_string "<a href=\"u\">text<b/>more</a>" in
  check_bool "tag" true (X.tag x = Some "a");
  check_bool "attr" true (X.attr "href" x = Some "u");
  check_int "children" 3 (List.length (X.children x));
  check_string "text content" "textmore" (X.text_content x)

let test_xml_entities () =
  let x = X.of_string "<t>a &amp; b &lt;c&gt; &#65; &#x42; &quot;</t>" in
  check_string "decoded" "a & b <c> A B \"" (X.text_content x)

let test_xml_prolog_comments_cdata () =
  let doc =
    "<?xml version=\"1.0\"?><!DOCTYPE dblp SYSTEM \"dblp.dtd\">\n\
     <!-- comment --><r><!-- inner --><![CDATA[raw <stuff>]]></r>"
  in
  let x = X.of_string doc in
  check_bool "root" true (X.tag x = Some "r");
  check_string "cdata" "raw <stuff>" (X.text_content x)

let test_xml_whitespace_only_text_dropped () =
  let x = X.of_string "<a>\n  <b/>\n  <c/>\n</a>" in
  check_int "only elements" 2 (List.length (X.children x))

let test_xml_errors () =
  let fails s =
    match X.of_string_opt s with
    | None -> ()
    | Some x -> Alcotest.failf "%S parsed to %s" s (X.to_string x)
  in
  List.iter fails
    [ ""; "<a>"; "<a></b>"; "<a attr></a>"; "text only"; "<a>&unknown;</a>"; "<a/><b/>" ]

let test_xml_parse_many () =
  let xs = X.parse_many "<a/>\n<b>t</b>\n<c x=\"1\"/>" in
  check_int "three elements" 3 (List.length xs)

let test_xml_roundtrip () =
  let cases =
    [
      "<a/>";
      "<a k=\"v\" k2=\"&amp;&quot;\">t1<b><c/>deep</b>t2</a>";
      "<article key=\"conf/x/1\"><author>A. B.</author><title>T &lt;3.</title></article>";
    ]
  in
  List.iter
    (fun s ->
      let x = X.of_string s in
      Alcotest.check xml_testable ("roundtrip " ^ s) x (X.of_string (X.to_string x)))
    cases

(* --- JSON → nested mapping --- *)

let test_json_mapping_shape () =
  let v = Textformats.Json_nested.of_json (J.of_string "{\"k\": \"v\"}") in
  check_value "object of one field" (Testutil.v "{{k, v}}") v;
  let v2 = Textformats.Json_nested.of_json (J.of_string "[1, \"x\", null, true]") in
  check_value "array to flat set" (Testutil.v "{1, null, true, x}") v2;
  let v3 = Textformats.Json_nested.of_json (J.of_string "{\"a\": {\"b\": [1]}}") in
  check_value "nesting preserved" (Testutil.v "{{a, {{b, {1}}}}}") v3

let test_json_scalar_atoms () =
  check_string "null" "null" (Textformats.Json_nested.atom_of_scalar J.Null);
  check_string "int-like" "42" (Textformats.Json_nested.atom_of_scalar (J.Number 42.));
  check_string "float" "2.5" (Textformats.Json_nested.atom_of_scalar (J.Number 2.5));
  match Textformats.Json_nested.atom_of_scalar (J.Array []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "array is not a scalar"

let test_json_pattern_containment () =
  (* the motivating use: JSON pattern query over mapped documents *)
  let doc = J.of_string "{\"user\": {\"name\": \"ann\", \"age\": 7}, \"tags\": [\"x\",\"y\"]}" in
  let s = Textformats.Json_nested.of_json doc in
  let q =
    Textformats.Json_nested.query
      [ ("user", Textformats.Json_nested.query [ ("name", Nested.Value.atom "ann") ]) ]
  in
  check_bool "pattern matches" true
    (Containment.Embed.contains Containment.Semantics.Hom ~q ~s);
  let q2 =
    Textformats.Json_nested.query
      [ ("user", Textformats.Json_nested.query [ ("name", Nested.Value.atom "bob") ]) ]
  in
  check_bool "wrong value" false
    (Containment.Embed.contains Containment.Semantics.Hom ~q:q2 ~s)

(* --- XML → nested mapping --- *)

let test_xml_mapping_shape () =
  let x = X.of_string "<article key=\"k1\"><author>Ann</author><year>2005</year></article>" in
  let v = Textformats.Xml_nested.of_xml x in
  check_value "element encoding"
    (Testutil.v "{article, {@key, k1}, {author, Ann}, {year, 2005}}")
    v

let test_xml_mapping_tokenize () =
  let x = X.of_string "<title>Big Data Systems</title>" in
  let v = Textformats.Xml_nested.of_xml ~tokenize:true x in
  check_value "tokens inline" (Testutil.v "{Big, Data, Systems, title}") v;
  let v2 = Textformats.Xml_nested.of_xml x in
  check_value "untokenized" (Testutil.v "{title, \"Big Data Systems\"}") v2

let test_xml_pattern_containment () =
  let x =
    X.of_string
      "<article><author>Ann</author><author>Bob</author><title>On Sets.</title></article>"
  in
  let s = Textformats.Xml_nested.of_xml ~tokenize:true x in
  let q = Textformats.Xml_nested.element "author" [ Nested.Value.atom "Ann" ] in
  let q = Nested.Value.set [ q ] in
  check_bool "author query" true
    (Containment.Embed.contains Containment.Semantics.Hom ~q ~s);
  let keyword =
    Nested.Value.set
      [ Textformats.Xml_nested.element "title" [ Nested.Value.atom "Sets." ] ]
  in
  check_bool "title keyword" true
    (Containment.Embed.contains Containment.Semantics.Hom ~q:keyword ~s)

(* random JSON values for roundtrip fuzzing *)
let rec gen_json depth st =
  let open QCheck.Gen in
  match if depth >= 3 then int_range 0 3 st else int_range 0 5 st with
  | 0 -> J.Null
  | 1 -> J.Bool (bool st)
  | 2 -> J.Number (float_of_int (int_range (-1000) 1000 st))
  | 3 -> J.String (string_size ~gen:printable (int_range 0 8) st)
  | 4 -> J.Array (list_size (int_range 0 4) (fun st -> gen_json (depth + 1) st) st)
  | _ ->
    J.Object
      (List.mapi
         (fun i v -> ("k" ^ string_of_int i, v))
         (list_size (int_range 0 4) (fun st -> gen_json (depth + 1) st) st))

let prop_json_random_roundtrip =
  Testutil.qcheck_case ~count:300 ~name:"random JSON roundtrips"
    (QCheck.make ~print:J.to_string (gen_json 0))
    (fun j ->
      J.equal j (J.of_string (J.to_string j))
      && J.equal j (J.of_string (J.to_string ~pretty:true j)))

let prop_json_mapping_respects_containment =
  Testutil.qcheck_case ~count:200 ~name:"object-field removal ⇒ mapped containment"
    (QCheck.make ~print:J.to_string (gen_json 0))
    (fun j ->
      match j with
      | J.Object ((_ :: _ :: _) as fields) ->
        let q = Textformats.Json_nested.of_json (J.Object (List.tl fields)) in
        let s = Textformats.Json_nested.of_json j in
        Containment.Embed.contains Containment.Semantics.Hom ~q ~s
      | _ -> QCheck.assume_fail ())

let prop_json_mapping_total =
  Testutil.qcheck_case ~count:100 ~name:"json mapping is total on generated tweets"
    QCheck.unit
    (fun () ->
      let g = Datagen.Twitter_sim.make ~seed:77 () in
      let j = Datagen.Twitter_sim.tweet_json g in
      let v = Textformats.Json_nested.of_json j in
      Nested.Value.is_set v && Nested.Value.depth v >= 2)

let () =
  Alcotest.run "textformats"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "member/to_list" `Quick test_json_member_and_list;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "equality" `Quick test_json_equal_order_insensitive;
        ] );
      ( "xml",
        [
          Alcotest.test_case "basic" `Quick test_xml_basic;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "prolog/comments/cdata" `Quick test_xml_prolog_comments_cdata;
          Alcotest.test_case "whitespace text dropped" `Quick
            test_xml_whitespace_only_text_dropped;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "parse_many" `Quick test_xml_parse_many;
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
        ] );
      ( "json mapping",
        [
          Alcotest.test_case "shape" `Quick test_json_mapping_shape;
          Alcotest.test_case "scalar atoms" `Quick test_json_scalar_atoms;
          Alcotest.test_case "pattern containment" `Quick test_json_pattern_containment;
          prop_json_mapping_total;
          prop_json_random_roundtrip;
          prop_json_mapping_respects_containment;
        ] );
      ( "xml mapping",
        [
          Alcotest.test_case "shape" `Quick test_xml_mapping_shape;
          Alcotest.test_case "tokenize" `Quick test_xml_mapping_tokenize;
          Alcotest.test_case "pattern containment" `Quick test_xml_pattern_containment;
        ] );
    ]
