(* Tests for the data generators: Zipf sampling, the Table-3 synthetic
   process, the Twitter and DBLP simulators, and the benchmark workload. *)

module V = Nested.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Zipf --- *)

let test_zipf_bounds () =
  let z = Datagen.Zipf.create ~n:100 ~theta:0.7 in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 10_000 do
    let r = Datagen.Zipf.sample z rng in
    if r < 1 || r > 100 then Alcotest.failf "rank %d out of range" r
  done

let test_zipf_skew_shape () =
  (* rank 1 must dominate, and higher θ must be more skewed *)
  let count_rank1 theta =
    let z = Datagen.Zipf.create ~n:1000 ~theta in
    let rng = Random.State.make [| 11 |] in
    let c = ref 0 in
    for _ = 1 to 20_000 do
      if Datagen.Zipf.sample z rng = 1 then incr c
    done;
    !c
  in
  let c5 = count_rank1 0.5 and c9 = count_rank1 0.9 in
  check_bool "rank 1 frequent at θ=0.5" true (c5 > 200);
  check_bool "θ=0.9 more skewed than θ=0.5" true (c9 > c5)

let test_zipf_empirical_vs_expected () =
  let z = Datagen.Zipf.create ~n:50 ~theta:0.7 in
  let rng = Random.State.make [| 13 |] in
  let n = 100_000 in
  let counts = Array.make 51 0 in
  for _ = 1 to n do
    let r = Datagen.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* the head of the distribution should track the exact probabilities
     within a loose tolerance (Gray's method is approximate) *)
  List.iter
    (fun rank ->
      let expected = Datagen.Zipf.expected_probability z rank in
      let got = Float.of_int counts.(rank) /. Float.of_int n in
      if Float.abs (got -. expected) > 0.25 *. expected +. 0.005 then
        Alcotest.failf "rank %d: expected %.4f got %.4f" rank expected got)
    [ 1; 2; 3; 5; 10 ]

let test_zipf_probabilities_sum_to_one () =
  let z = Datagen.Zipf.create ~n:200 ~theta:0.5 in
  let total = ref 0. in
  for i = 1 to 200 do
    total := !total +. Datagen.Zipf.expected_probability z i
  done;
  Alcotest.(check (float 0.0001)) "sums to 1" 1.0 !total

let test_zipf_validation () =
  let bad f = match f () with exception Invalid_argument _ -> () | _ -> Alcotest.fail "expected Invalid_argument" in
  bad (fun () -> Datagen.Zipf.create ~n:0 ~theta:0.5);
  bad (fun () -> Datagen.Zipf.create ~n:10 ~theta:0.);
  bad (fun () -> Datagen.Zipf.create ~n:10 ~theta:1.)

(* --- label pool --- *)

let test_label_pool () =
  let p = Datagen.Label_pool.create ~prefix:"x" 100 in
  Alcotest.(check string) "label" "x17" (Datagen.Label_pool.label p 17);
  Alcotest.(check (option int)) "rank back" (Some 17)
    (Datagen.Label_pool.rank_of_label p "x17");
  Alcotest.(check (option int)) "foreign label" None
    (Datagen.Label_pool.rank_of_label p "y17");
  Alcotest.(check (option int)) "overflow rank" None
    (Datagen.Label_pool.rank_of_label p "x101")

(* --- synthetic (Table 3) --- *)

let check_table3_bounds params v =
  (* every node respects the Table-3 bounds; leaves may dedup below the
     drawn count but can never exceed the max *)
  let p_ok = ref true in
  let rec walk depth v =
    let leaves = List.length (V.leaves v) in
    let children = V.subsets v in
    if leaves > params.Datagen.Synthetic.max_leaves then p_ok := false;
    if List.length children > params.Datagen.Synthetic.max_internal then p_ok := false;
    if depth >= params.Datagen.Synthetic.max_depth then p_ok := false;
    List.iter (walk (depth + 1)) children
  in
  walk 0 v;
  !p_ok

let test_wide_params () =
  let params = Datagen.Synthetic.params_of_shape Datagen.Synthetic.Wide in
  check_int "max leaves" 12 params.Datagen.Synthetic.max_leaves;
  check_int "max internal" 6 params.Datagen.Synthetic.max_internal;
  Alcotest.(check (float 0.001)) "stop prob" 0.8 params.Datagen.Synthetic.stop_probability

let test_deep_params () =
  let params = Datagen.Synthetic.params_of_shape Datagen.Synthetic.Deep in
  check_int "max leaves" 2 params.Datagen.Synthetic.max_leaves;
  check_int "max internal" 3 params.Datagen.Synthetic.max_internal;
  Alcotest.(check (float 0.001)) "stop prob" 0.2 params.Datagen.Synthetic.stop_probability

let test_synthetic_respects_bounds () =
  List.iter
    (fun shape ->
      let params = Datagen.Synthetic.params_of_shape ~max_depth:10 shape in
      let g = Datagen.Synthetic.make ~seed:5 ~params Datagen.Synthetic.Uniform in
      List.iter
        (fun v -> check_bool "bounds" true (check_table3_bounds params v))
        (Datagen.Synthetic.values g 200))
    [ Datagen.Synthetic.Wide; Datagen.Synthetic.Deep ]

let test_synthetic_every_node_has_a_leaf () =
  (* step (1) always draws ≥ 1 leaf: base algorithms apply *)
  let params = Datagen.Synthetic.params_of_shape Datagen.Synthetic.Deep in
  let g = Datagen.Synthetic.make ~seed:6 ~params (Datagen.Synthetic.Zipfian 0.7) in
  List.iter
    (fun v ->
      check_bool "leafy" false
        (Containment.Query.has_leafless_node (Containment.Query.of_value v)))
    (Datagen.Synthetic.values g 100)

let test_synthetic_deterministic () =
  let mk () =
    Datagen.Synthetic.make ~seed:9
      ~params:(Datagen.Synthetic.params_of_shape Datagen.Synthetic.Wide)
      Datagen.Synthetic.Uniform
  in
  let a = Datagen.Synthetic.values (mk ()) 20 in
  let b = Datagen.Synthetic.values (mk ()) 20 in
  check_bool "same seed, same data" true (List.for_all2 V.equal a b)

let test_synthetic_shapes_differ () =
  let gen shape =
    Datagen.Synthetic.make ~seed:3
      ~params:(Datagen.Synthetic.params_of_shape shape)
      Datagen.Synthetic.Uniform
  in
  let avg f vs = List.fold_left (fun a v -> a + f v) 0 vs / List.length vs in
  let wide = Datagen.Synthetic.values (gen Datagen.Synthetic.Wide) 300 in
  let deep = Datagen.Synthetic.values (gen Datagen.Synthetic.Deep) 300 in
  check_bool "deep sets are deeper on average" true
    (avg V.depth deep > avg V.depth wide)

let test_synthetic_seq_matches_values () =
  let mk () =
    Datagen.Synthetic.make ~seed:4
      ~params:(Datagen.Synthetic.params_of_shape Datagen.Synthetic.Wide)
      Datagen.Synthetic.Uniform
  in
  let a = Datagen.Synthetic.values (mk ()) 10 in
  let b = List.of_seq (Datagen.Synthetic.seq (mk ()) 10) in
  check_bool "seq = values" true (List.for_all2 V.equal a b)

(* --- Twitter --- *)

let test_twitter_structure () =
  let g = Datagen.Twitter_sim.make ~seed:1 () in
  let j = Datagen.Twitter_sim.tweet_json g in
  check_bool "has user.screen_name" true
    (match Textformats.Json.member "user" j with
    | Some u -> Textformats.Json.member "screen_name" u <> None
    | None -> false);
  check_bool "has entities" true (Textformats.Json.member "entities" j <> None);
  (* mapped value is nested ≥ 3 deep (root → field-pair → sub-object) *)
  let v = Datagen.Twitter_sim.tweet g in
  check_bool "nested" true (V.depth v >= 3)

let test_twitter_queries_match () =
  let g = Datagen.Twitter_sim.make ~seed:2 () in
  let tweets = Datagen.Twitter_sim.values g 300 in
  let inv = Containment.Collection.of_values tweets in
  (* the most active user must appear in some tweets *)
  let q = Datagen.Twitter_sim.user_query ~screen_name:(Datagen.Twitter_sim.screen_name 1) in
  let r = Containment.Engine.query inv q in
  check_bool "user 1 found" true (r.Containment.Engine.records <> []);
  (* an unknown user matches nothing *)
  let q404 = Datagen.Twitter_sim.user_query ~screen_name:"no_such_user" in
  check_bool "unknown user" true ((Containment.Engine.query inv q404).Containment.Engine.records = [])

let test_twitter_skew () =
  let g = Datagen.Twitter_sim.make ~seed:3 ~users:500 () in
  let tweets = Datagen.Twitter_sim.values g 1000 in
  let inv = Containment.Collection.of_values tweets in
  let count name =
    List.length
      (Containment.Engine.query inv (Datagen.Twitter_sim.user_query ~screen_name:name)).Containment.Engine.records
  in
  check_bool "popular user dominates" true
    (count (Datagen.Twitter_sim.screen_name 1) > count (Datagen.Twitter_sim.screen_name 400))

(* --- DBLP --- *)

let test_dblp_structure () =
  let g = Datagen.Dblp_sim.make ~seed:1 () in
  let x = Datagen.Dblp_sim.article_xml g in
  check_bool "is article or inproceedings" true
    (match Textformats.Xml.tag x with
    | Some "article" | Some "inproceedings" -> true
    | _ -> false);
  check_bool "has key attribute" true (Textformats.Xml.attr "key" x <> None);
  check_bool "has an author" true
    (List.exists
       (fun c -> Textformats.Xml.tag c = Some "author")
       (Textformats.Xml.children x))

let test_dblp_queries_match () =
  let g = Datagen.Dblp_sim.make ~seed:2 () in
  let articles = Datagen.Dblp_sim.values g 300 in
  let inv = Containment.Collection.of_values articles in
  let q = Datagen.Dblp_sim.author_query ~author:(Datagen.Dblp_sim.author_name 1) in
  check_bool "prolific author found" true
    ((Containment.Engine.query inv q).Containment.Engine.records <> [])

let test_dblp_xml_parses_back () =
  let g = Datagen.Dblp_sim.make ~seed:4 () in
  let x = Datagen.Dblp_sim.article_xml g in
  let x' = Textformats.Xml.of_string (Textformats.Xml.to_string x) in
  check_bool "xml roundtrip" true (Textformats.Xml.equal x x')

(* --- workload --- *)

let test_workload_split_and_labels () =
  let inv =
    Containment.Collection.of_values
      (Datagen.Synthetic.values
         (Datagen.Synthetic.make ~seed:8
            ~params:(Datagen.Synthetic.params_of_shape Datagen.Synthetic.Wide)
            Datagen.Synthetic.Uniform)
         200)
  in
  let qs = Datagen.Workload.benchmark_queries ~seed:5 ~count:100 inv in
  check_int "100 queries" 100 (List.length qs);
  check_int "50 positive" 50
    (List.length (List.filter (fun q -> q.Datagen.Workload.positive) qs));
  (* positives really match; negatives really don't *)
  List.iter
    (fun (q : Datagen.Workload.query) ->
      let r = Containment.Engine.query inv q.Datagen.Workload.value in
      if q.Datagen.Workload.positive then begin
        check_bool "positive matches its source" true
          (List.mem q.Datagen.Workload.source_record r.Containment.Engine.records)
      end
      else check_bool "negative matches nothing" true (r.Containment.Engine.records = []))
    qs

let test_workload_distort_adds_fresh_leaf () =
  let rng = Random.State.make [| 1 |] in
  let v = Testutil.v "{a, {b, {c}}}" in
  let d = Datagen.Workload.distort rng ~fresh:"FRESH" v in
  check_int "one more leaf" (V.leaf_count v + 1) (V.leaf_count d);
  check_bool "fresh present" true
    (List.mem "FRESH" (V.atom_universe d))

let test_workload_count_capped () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let qs = Datagen.Workload.benchmark_queries ~count:100 inv in
  check_int "capped at collection size" 4 (List.length qs)

let () =
  Alcotest.run "datagen"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew shape" `Quick test_zipf_skew_shape;
          Alcotest.test_case "empirical vs expected" `Quick test_zipf_empirical_vs_expected;
          Alcotest.test_case "probabilities sum" `Quick test_zipf_probabilities_sum_to_one;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
        ] );
      ("label pool", [ Alcotest.test_case "labels" `Quick test_label_pool ]);
      ( "synthetic",
        [
          Alcotest.test_case "wide params (Table 3)" `Quick test_wide_params;
          Alcotest.test_case "deep params (Table 3)" `Quick test_deep_params;
          Alcotest.test_case "bounds hold" `Quick test_synthetic_respects_bounds;
          Alcotest.test_case "every node leafy" `Quick test_synthetic_every_node_has_a_leaf;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "wide vs deep" `Quick test_synthetic_shapes_differ;
          Alcotest.test_case "seq = values" `Quick test_synthetic_seq_matches_values;
        ] );
      ( "twitter",
        [
          Alcotest.test_case "structure" `Quick test_twitter_structure;
          Alcotest.test_case "queries match" `Quick test_twitter_queries_match;
          Alcotest.test_case "skew" `Quick test_twitter_skew;
        ] );
      ( "dblp",
        [
          Alcotest.test_case "structure" `Quick test_dblp_structure;
          Alcotest.test_case "queries match" `Quick test_dblp_queries_match;
          Alcotest.test_case "xml roundtrip" `Quick test_dblp_xml_parses_back;
        ] );
      ( "workload",
        [
          Alcotest.test_case "split and labels" `Quick test_workload_split_and_labels;
          Alcotest.test_case "distortion" `Quick test_workload_distort_adds_fresh_leaf;
          Alcotest.test_case "count capped" `Quick test_workload_count_capped;
        ] );
    ]
