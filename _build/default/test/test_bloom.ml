(* Tests for Bloom filters: the basic filter, the Breadth and Depth
   hierarchical variants (paper Sec. 3.3), and the per-record prefilter. *)

module E = Containment.Engine
module S = Containment.Semantics
module B = Containment.Bloom

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- basic filter --- *)

let test_add_mem_no_false_negatives () =
  let f = B.create ~bits:128 () in
  let keys = List.init 20 (fun i -> "key" ^ string_of_int i) in
  List.iter (B.add f) keys;
  List.iter (fun k -> check_bool k true (B.mem f k)) keys

let test_empty_filter_rejects () =
  let f = B.create ~bits:128 () in
  check_bool "nothing in empty filter" false (B.mem f "x");
  Alcotest.(check (float 0.0001)) "fill 0" 0. (B.fill_ratio f)

let test_subset_semantics () =
  let a = B.create ~bits:256 () and b = B.create ~bits:256 () in
  List.iter (B.add a) [ "x"; "y" ];
  List.iter (B.add b) [ "x"; "y"; "z" ];
  check_bool "a ⊆ b" true (B.subset a b);
  check_bool "b ⊄ a" false (B.subset b a);
  check_bool "empty ⊆ a" true (B.subset (B.create ~bits:256 ()) a)

let test_union () =
  let a = B.create ~bits:256 () and b = B.create ~bits:256 () in
  B.add a "x";
  B.add b "y";
  let u = B.union a b in
  check_bool "x in union" true (B.mem u "x");
  check_bool "y in union" true (B.mem u "y");
  check_bool "a ⊆ u" true (B.subset a u);
  check_bool "b ⊆ u" true (B.subset b u)

let test_geometry_mismatch () =
  let a = B.create ~bits:128 () and b = B.create ~bits:256 () in
  match B.subset a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected geometry mismatch"

let test_optimal_sizing () =
  let f = B.optimal ~expected:100 ~fp_rate:0.01 in
  check_bool "roughly 9.6 bits/key" true (B.bits f >= 900 && B.bits f <= 1000);
  check_bool "about 7 hashes" true (B.hash_count f >= 6 && B.hash_count f <= 8)

let test_encode_decode () =
  let f = B.create ~bits:128 ~hashes:5 () in
  List.iter (B.add f) [ "a"; "b"; "c" ];
  let g = B.decode (B.encode f) in
  check_int "hashes preserved" 5 (B.hash_count g);
  check_bool "contents preserved" true (B.subset f g && B.subset g f)

let test_fp_rate_reasonable () =
  let f = B.optimal ~expected:200 ~fp_rate:0.05 in
  for i = 0 to 199 do
    B.add f ("member" ^ string_of_int i)
  done;
  let fps = ref 0 in
  for i = 0 to 999 do
    if B.mem f ("nonmember" ^ string_of_int i) then incr fps
  done;
  (* generous bound: 5% nominal, allow up to 12% *)
  check_bool (Printf.sprintf "fp rate %d/1000" !fps) true (!fps < 120)

let prop_no_false_negatives =
  Testutil.qcheck_case ~name:"bloom never loses members"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 50) QCheck.printable_string)
    (fun keys ->
      let f = B.create ~bits:512 () in
      List.iter (B.add f) keys;
      List.for_all (B.mem f) keys)

let prop_subset_sound_for_sets =
  Testutil.qcheck_case ~name:"set ⊆ set ⇒ filter ⊆ filter"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 20) QCheck.printable_string)
       (QCheck.list_of_size (QCheck.Gen.int_range 0 20) QCheck.printable_string))
    (fun (xs, ys) ->
      let a = B.create ~bits:512 () and b = B.create ~bits:512 () in
      List.iter (B.add a) xs;
      List.iter (B.add b) (xs @ ys);
      B.subset a b)

(* --- hierarchical filters --- *)

module BB = Containment.Breadth_bloom
module DB = Containment.Depth_bloom

let test_breadth_hom_soundness () =
  (* q ⊆ s at matching levels must pass; wrong level must be testable *)
  let s = BB.of_value (Testutil.v "{a, {b, {c}}}") in
  let q_good = BB.of_value (Testutil.v "{a, {b}}") in
  let q_wrong_level = BB.of_value (Testutil.v "{b, {a}}") in
  let q_too_deep = BB.of_value (Testutil.v "{a, {b, {c, {d}}}}") in
  check_bool "matching levels pass" true (BB.subset_hom ~q:q_good ~s);
  check_bool "levels swapped fail" false (BB.subset_hom ~q:q_wrong_level ~s);
  check_bool "deeper query fails" false (BB.subset_hom ~q:q_too_deep ~s)

let test_breadth_homeo_relaxation () =
  let s = BB.of_value (Testutil.v "{x, {y, {c}}}") in
  (* c is at level 2 in s but level 1 in q: homeo check passes, hom fails *)
  let q = BB.of_value (Testutil.v "{x, {c}}") in
  check_bool "hom fails" false (BB.subset_hom ~q ~s);
  check_bool "homeo passes" true (BB.subset_homeo ~q ~s)

let test_depth_filter_variants () =
  let s = DB.of_value (Testutil.v "{a, {b, {c}}}") in
  let q_good = DB.of_value (Testutil.v "{a, {b}}") in
  let q_wrong_level = DB.of_value (Testutil.v "{b, {a}}") in
  check_bool "hom pass" true (DB.subset_hom ~q:q_good ~s);
  check_bool "hom wrong level fail" false (DB.subset_hom ~q:q_wrong_level ~s);
  (* homeo uses depth-agnostic labels only *)
  check_bool "homeo tolerates level shift" true (DB.subset_homeo ~q:q_wrong_level ~s);
  check_bool "missing label still fails homeo" false
    (DB.subset_homeo ~q:(DB.of_value (Testutil.v "{zz}")) ~s)

let test_hier_encode_decode () =
  let v = Testutil.v "{a, {b, {c}}}" in
  let bb = BB.of_value v in
  let bb' = BB.decode (BB.encode bb) in
  check_int "levels" (BB.levels bb) (BB.levels bb');
  check_bool "same filter" true (BB.subset_hom ~q:bb ~s:bb' && BB.subset_hom ~q:bb' ~s:bb);
  let db = DB.of_value v in
  let db' = DB.decode (DB.encode db) in
  check_bool "depth same" true (DB.subset_hom ~q:db ~s:db' && DB.subset_hom ~q:db' ~s:db)

let prop_breadth_no_false_negatives =
  Testutil.qcheck_case ~count:300 ~name:"breadth filter: containment ⇒ test passes"
    (QCheck.pair Testutil.arbitrary_value Testutil.arbitrary_value)
    (fun (q, s) ->
      QCheck.assume (Nested.Value.is_set q && Nested.Value.is_set s);
      QCheck.assume (Containment.Embed.contains S.Hom ~q ~s);
      BB.subset_hom ~q:(BB.of_value q) ~s:(BB.of_value s))

let prop_depth_no_false_negatives =
  Testutil.qcheck_case ~count:300 ~name:"depth filter: containment ⇒ test passes"
    (QCheck.pair Testutil.arbitrary_value Testutil.arbitrary_value)
    (fun (q, s) ->
      QCheck.assume (Nested.Value.is_set q && Nested.Value.is_set s);
      QCheck.assume (Containment.Embed.contains S.Hom ~q ~s);
      DB.subset_hom ~q:(DB.of_value q) ~s:(DB.of_value s))

let prop_breadth_homeo_no_false_negatives =
  Testutil.qcheck_case ~count:300 ~name:"breadth filter: homeo containment ⇒ homeo test"
    (QCheck.pair Testutil.arbitrary_value Testutil.arbitrary_value)
    (fun (q, s) ->
      QCheck.assume (Nested.Value.is_set q && Nested.Value.is_set s);
      QCheck.assume (Containment.Embed.contains S.Homeo ~q ~s);
      BB.subset_homeo ~q:(BB.of_value q) ~s:(BB.of_value s))

(* --- per-record prefilter --- *)

module FI = Containment.Filter_index

let test_prefilter_prunes_negatives () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let fi = FI.build inv in
  check_int "covers all records" 4 (FI.record_count fi);
  (match FI.candidate_records fi ~join:S.Containment ~embedding:S.Hom (Testutil.v "{Mars}") with
  | Some [] -> ()
  | Some l -> Alcotest.failf "expected no candidates, got %d" (List.length l)
  | None -> Alcotest.fail "expected a supported test");
  match FI.candidate_records fi ~join:S.Containment ~embedding:S.Hom (Testutil.v "{London}") with
  | Some l -> check_bool "record 0 survives" true (List.mem 0 l)
  | None -> Alcotest.fail "expected a supported test"

let test_prefilter_overlap_unsupported () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let fi = FI.build inv in
  check_bool "overlap yields None" true
    (FI.candidate_records fi ~join:(S.Overlap 1) ~embedding:S.Hom (Testutil.v "{a}") = None)

let test_engine_with_prefilter_same_results () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let fi = FI.build inv in
  let queries =
    [ "{UK, {A, motorbike}}"; "{USA}"; "{Mars}"; "{{UK, {A, motorbike}}}"; "{Paris, FR}" ]
  in
  List.iter
    (fun qs ->
      let q = Testutil.v qs in
      let plain = (E.query inv q).E.records in
      let filtered =
        (E.query ~config:{ E.default with E.filter_index = Some fi } inv q).E.records
      in
      Alcotest.(check (list int)) ("same results for " ^ qs) plain filtered)
    queries

let test_engine_prefilter_reports_survivors () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let fi = FI.build inv in
  let r =
    E.query ~config:{ E.default with E.filter_index = Some fi } inv (Testutil.v "{Mars}")
  in
  Alcotest.(check (option int)) "all records pruned" (Some 0) r.E.prefilter_survivors

let test_prefilter_save_load () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let fi = FI.build ~kind:FI.Depth inv in
  FI.save fi inv;
  match FI.load inv with
  | None -> Alcotest.fail "expected saved filters"
  | Some fi' ->
    check_bool "kind preserved" true (FI.kind fi' = FI.Depth);
    check_int "record count" 4 (FI.record_count fi');
    let q = Testutil.v "{London}" in
    check_bool "same candidates" true
      (FI.candidate_records fi ~join:S.Containment ~embedding:S.Hom q
      = FI.candidate_records fi' ~join:S.Containment ~embedding:S.Hom q)

let prop_prefilter_never_drops_matches =
  Testutil.qcheck_case ~count:150 ~name:"prefilter preserves all true matches"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let fi = FI.build inv in
      let plain = (E.query inv q).E.records in
      let filtered =
        (E.query ~config:{ E.default with E.filter_index = Some fi } inv q).E.records
      in
      plain = filtered)

let () =
  Alcotest.run "bloom"
    [
      ( "basic",
        [
          Alcotest.test_case "no false negatives" `Quick test_add_mem_no_false_negatives;
          Alcotest.test_case "empty filter" `Quick test_empty_filter_rejects;
          Alcotest.test_case "subset" `Quick test_subset_semantics;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "geometry mismatch" `Quick test_geometry_mismatch;
          Alcotest.test_case "optimal sizing" `Quick test_optimal_sizing;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
          Alcotest.test_case "fp rate sane" `Quick test_fp_rate_reasonable;
          prop_no_false_negatives;
          prop_subset_sound_for_sets;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "breadth hom" `Quick test_breadth_hom_soundness;
          Alcotest.test_case "breadth homeo" `Quick test_breadth_homeo_relaxation;
          Alcotest.test_case "depth variants" `Quick test_depth_filter_variants;
          Alcotest.test_case "encode/decode" `Quick test_hier_encode_decode;
          prop_breadth_no_false_negatives;
          prop_depth_no_false_negatives;
          prop_breadth_homeo_no_false_negatives;
        ] );
      ( "prefilter",
        [
          Alcotest.test_case "prunes negatives" `Quick test_prefilter_prunes_negatives;
          Alcotest.test_case "overlap unsupported" `Quick test_prefilter_overlap_unsupported;
          Alcotest.test_case "engine equivalence" `Quick
            test_engine_with_prefilter_same_results;
          Alcotest.test_case "survivor count" `Quick test_engine_prefilter_reports_survivors;
          Alcotest.test_case "save/load" `Quick test_prefilter_save_load;
          prop_prefilter_never_drops_matches;
        ] );
    ]
