(* Tests for the alternate embedding semantics (paper, Sec. 2 and 4.2):
   isomorphic and homeomorphic containment, including the Figure 2 cases. *)

module E = Containment.Engine
module S = Containment.Semantics

let records ?(algorithm = E.Bottom_up) ~embedding inv q =
  (E.query ~config:{ E.default with E.algorithm; E.embedding } inv q).E.records

let check_records = Alcotest.(check (list int))
let check_bool = Alcotest.(check bool)

let both_algorithms f () =
  f E.Bottom_up;
  f E.Top_down

(* --- Figure 2 of the paper ---

   The database set t_113 is, in our reconstruction of Fig. 1's subtree, a
   set with leaves {A, B, C, car, motorbike} nested in {UK, ·}: we model the
   essential shapes directly.

   t_a: hom- but not iso-contained (two query children map to one data child).
   t_b: iso-contained.
   t_c: homeo- but not hom-contained (a leaf sits one level deeper). *)

let fig2_data = "{UK, {A, B, car}, {C}}"

let t_a = "{UK, {A}, {A, B}}" (* both children must map to {A, B, car} *)
let t_b = "{UK, {A, B}, {C}}" (* distinct images exist *)

let test_fig2_hom_vs_iso =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection [ fig2_data ] in
      check_records "t_a hom yes" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Hom inv (Testutil.v t_a));
      check_records "t_a iso no" []
        (records ~algorithm:alg ~embedding:S.Iso inv (Testutil.v t_a));
      check_records "t_b hom yes" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Hom inv (Testutil.v t_b));
      check_records "t_b iso yes" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Iso inv (Testutil.v t_b)))

let test_fig2_homeo =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection [ "{UK, {x, {C}}}" ] in
      check_records "t_c hom no" []
        (records ~algorithm:alg ~embedding:S.Hom inv (Testutil.v "{{{{C}}}}"));
      (* {{C}} one level up: homeo lets the inner set slide down *)
      check_records "homeo yes" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{{C}}"));
      check_records "hom needs exact level" []
        (records ~algorithm:alg ~embedding:S.Hom inv (Testutil.v "{{C}}")))

(* --- isomorphic containment --- *)

let test_iso_needs_distinct_images =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection [ "{r, {a, b}}"; "{r, {a}, {b}}"; "{r, {a, b}, {a, c}}" ] in
      let q = Testutil.v "{r, {a}, {b}}" in
      check_records "hom matches all three" [ 0; 1; 2 ]
        (records ~algorithm:alg ~embedding:S.Hom inv q);
      (* iso: record 0 has one child for two query children; record 2's
         children are {a,b} and {a,c}: {a}→{a,c}, {b}→{a,b} works *)
      check_records "iso needs two children" [ 1; 2 ]
        (records ~algorithm:alg ~embedding:S.Iso inv q))

let test_iso_matching_needs_sdr =
  both_algorithms (fun alg ->
      (* three query children, only two distinct targets *)
      let inv = Testutil.mem_collection [ "{x, {a, b, c}, {a, b}}" ] in
      let q3 = Testutil.v "{x, {a}, {b}, {c}}" in
      check_records "3 into 2 fails" []
        (records ~algorithm:alg ~embedding:S.Iso inv q3);
      let q2 = Testutil.v "{x, {a}, {c}}" in
      (* {c} must take {a,b,c}, {a} takes {a,b} *)
      check_records "forced assignment found" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Iso inv q2))

let test_iso_deep_recursion =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection [ "{x, {y, {a}, {a, b}}, {y, {a}}}" ] in
      (* inner level also needs distinct images *)
      let q = Testutil.v "{x, {y, {a}, {b}}}" in
      check_records "inner sdr" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Iso inv q);
      let q_too_many = Testutil.v "{x, {y, {a}, {a}, {b}}}" in
      (* {a},{a} collapse canonically, so this equals q *)
      check_records "canonical collapse" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Iso inv q_too_many))

let prop_iso_implies_hom =
  Testutil.qcheck_case ~count:200 ~name:"iso ⊆ hom"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let iso = records ~embedding:S.Iso inv q in
      let hom = records ~embedding:S.Hom inv q in
      List.for_all (fun i -> List.mem i hom) iso)

let prop_iso_algorithms_agree_with_oracle =
  Testutil.qcheck_case ~count:200 ~name:"iso: BU = TD = oracle"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let bu = records ~algorithm:E.Bottom_up ~embedding:S.Iso inv q in
      let td = records ~algorithm:E.Top_down ~embedding:S.Iso inv q in
      let oracle =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, s) ->
               if Containment.Embed.contains S.Iso ~q ~s then Some i else None)
      in
      bu = td && td = oracle)

(* --- homeomorphic containment --- *)

let test_homeo_skips_levels =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection [ "{a, {b, {c, {d, leaf}}}}" ] in
      (* internal edges relax to descendants *)
      check_records "skip one" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{a, {c, {leaf}}}"));
      check_records "skip many" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{{leaf}}"));
      (* leaf edges stay parent-child: 'leaf' must be a direct member *)
      check_records "leaf edge strict" []
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{a, leaf}")))

let test_homeo_respects_subtree_boundaries =
  both_algorithms (fun alg ->
      (* the descendant must be inside the matched node's subtree, not a
         cousin elsewhere in the record *)
      let inv = Testutil.mem_collection [ "{x, {a, {p}}, {b, {q}}}" ] in
      check_records "q not under the a-branch" []
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{{a, {q, b}}}"));
      check_records "within subtree fine" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{{a, {p}}}")))

let test_homeo_cross_record_isolation =
  both_algorithms (fun alg ->
      (* descendants never leak into the next record despite global ids *)
      let inv = Testutil.mem_collection [ "{a}"; "{b, {c}}" ] in
      check_records "no cross-record descendant" []
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{a, {c}}")))

let prop_hom_implies_homeo =
  Testutil.qcheck_case ~count:200 ~name:"hom ⊆ homeo"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let hom = records ~embedding:S.Hom inv q in
      let homeo = records ~embedding:S.Homeo inv q in
      List.for_all (fun i -> List.mem i homeo) hom)

let prop_homeo_algorithms_agree_with_oracle =
  Testutil.qcheck_case ~count:200 ~name:"homeo: BU = TD = oracle"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let bu = records ~algorithm:E.Bottom_up ~embedding:S.Homeo inv q in
      let td = records ~algorithm:E.Top_down ~embedding:S.Homeo inv q in
      let oracle =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, s) ->
               if Containment.Embed.contains S.Homeo ~q ~s then Some i else None)
      in
      bu = td && td = oracle)

(* --- fully homeomorphic containment (footnote 4 lifted) --- *)

let test_homeo_full_leaf_edges_relaxed =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection [ "{a, {x, {b, y}}}" ] in
      (* b sits two levels below the root: full homeo accepts, homeo does not *)
      check_records "homeo-full accepts deep leaf" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Homeo_full inv (Testutil.v "{a, b}"));
      check_records "homeo keeps leaf edges strict" []
        (records ~algorithm:alg ~embedding:S.Homeo inv (Testutil.v "{a, b}"));
      (* a missing label still fails *)
      check_records "missing label" []
        (records ~algorithm:alg ~embedding:S.Homeo_full inv (Testutil.v "{a, z}")))

let test_homeo_full_structure_still_matters =
  both_algorithms (fun alg ->
      let inv = Testutil.mem_collection [ "{a, {b}, {c}}" ] in
      (* both leaves reachable, but the nested pair {b, c} needs one node
         whose subtree has both — only the root qualifies, and the query
         wants it one level down *)
      check_records "subtree grouping enforced" []
        (records ~algorithm:alg ~embedding:S.Homeo_full inv (Testutil.v "{{b, c}, {b, c}}"));
      check_records "achievable grouping" [ 0 ]
        (records ~algorithm:alg ~embedding:S.Homeo_full inv (Testutil.v "{{b}, {c}}")))

let prop_homeo_implies_homeo_full =
  Testutil.qcheck_case ~count:200 ~name:"homeo ⊆ homeo-full"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let homeo = records ~embedding:S.Homeo inv q in
      let full = records ~embedding:S.Homeo_full inv q in
      List.for_all (fun i -> List.mem i full) homeo)

let prop_homeo_full_algorithms_agree_with_oracle =
  Testutil.qcheck_case ~count:200 ~name:"homeo-full: BU = TD = oracle"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let bu = records ~algorithm:E.Bottom_up ~embedding:S.Homeo_full inv q in
      let td = records ~algorithm:E.Top_down ~embedding:S.Homeo_full inv q in
      let oracle =
        List.mapi (fun i v -> (i, v)) values
        |> List.filter_map (fun (i, s) ->
               if Containment.Embed.contains S.Homeo_full ~q ~s then Some i else None)
      in
      bu = td && td = oracle)

(* --- strictness of the inclusions (Sec. 2: "both inclusions are strict") --- *)

let test_inclusions_strict () =
  (* iso ⊊ hom: t_a-style witness *)
  check_bool "hom not iso" true
    (Containment.Embed.contains S.Hom ~q:(Testutil.v t_a) ~s:(Testutil.v fig2_data)
    && not (Containment.Embed.contains S.Iso ~q:(Testutil.v t_a) ~s:(Testutil.v fig2_data)));
  (* hom ⊊ homeo *)
  let q = Testutil.v "{{C}}" and s = Testutil.v "{UK, {x, {C}}}" in
  check_bool "homeo not hom" true
    (Containment.Embed.contains S.Homeo ~q ~s
    && not (Containment.Embed.contains S.Hom ~q ~s))

(* --- the matching module itself --- *)

let test_sdr () =
  let m = Containment.Matching.has_sdr in
  check_bool "empty" true (m []);
  check_bool "simple" true (m [ [| 1 |]; [| 2 |] ]);
  check_bool "conflict" false (m [ [| 1 |]; [| 1 |] ]);
  check_bool "augmenting path needed" true (m [ [| 1; 2 |]; [| 1 |] ]);
  check_bool "hall violation" false (m [ [| 1; 2 |]; [| 1; 2 |]; [| 1; 2 |] ]);
  check_bool "chain reassignment" true (m [ [| 1 |]; [| 1; 2 |]; [| 2; 3 |] ]);
  check_bool "empty set blocks" false (m [ [| 1 |]; [||] ])

let () =
  Alcotest.run "semantics"
    [
      ( "figure 2",
        [
          Alcotest.test_case "hom vs iso" `Quick test_fig2_hom_vs_iso;
          Alcotest.test_case "homeo" `Quick test_fig2_homeo;
          Alcotest.test_case "strict inclusions" `Quick test_inclusions_strict;
        ] );
      ( "isomorphic",
        [
          Alcotest.test_case "distinct images" `Quick test_iso_needs_distinct_images;
          Alcotest.test_case "sdr" `Quick test_iso_matching_needs_sdr;
          Alcotest.test_case "deep" `Quick test_iso_deep_recursion;
          prop_iso_implies_hom;
          prop_iso_algorithms_agree_with_oracle;
        ] );
      ( "homeomorphic",
        [
          Alcotest.test_case "skips levels" `Quick test_homeo_skips_levels;
          Alcotest.test_case "subtree boundaries" `Quick
            test_homeo_respects_subtree_boundaries;
          Alcotest.test_case "cross-record isolation" `Quick
            test_homeo_cross_record_isolation;
          prop_hom_implies_homeo;
          prop_homeo_algorithms_agree_with_oracle;
        ] );
      ( "fully homeomorphic",
        [
          Alcotest.test_case "leaf edges relaxed" `Quick test_homeo_full_leaf_edges_relaxed;
          Alcotest.test_case "structure still matters" `Quick
            test_homeo_full_structure_still_matters;
          prop_homeo_implies_homeo_full;
          prop_homeo_full_algorithms_agree_with_oracle;
        ] );
      ("matching", [ Alcotest.test_case "has_sdr" `Quick test_sdr ]);
    ]
