test/testutil.ml: Alcotest Array Containment Filename Format Fun List Nested QCheck QCheck_alcotest String Sys
