test/test_invfile.ml: Alcotest Array Containment Datagen Format Gen Hashtbl Int Invfile List Nested Option QCheck Storage String Testutil
