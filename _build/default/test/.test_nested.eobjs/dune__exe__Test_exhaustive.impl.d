test/test_exhaustive.ml: Alcotest Containment Hashtbl Lazy List Nested Set String
