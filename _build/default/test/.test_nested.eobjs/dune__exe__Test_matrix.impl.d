test/test_matrix.ml: Alcotest Containment Datagen Fun Invfile Lazy List Nested Printf Sys Testutil
