test/test_nscql.mli:
