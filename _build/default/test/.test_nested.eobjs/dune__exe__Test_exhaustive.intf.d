test/test_exhaustive.mli:
