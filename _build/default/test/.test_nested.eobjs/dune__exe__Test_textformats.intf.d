test/test_textformats.mli:
