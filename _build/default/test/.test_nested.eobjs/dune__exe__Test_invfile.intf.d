test/test_invfile.mli:
