test/test_storage.ml: Alcotest Array Bytes Char Fun Hashtbl Int List Printf QCheck Storage String Sys Testutil Unix
