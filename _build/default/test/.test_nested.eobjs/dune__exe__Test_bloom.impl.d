test/test_bloom.ml: Alcotest Containment List Nested Printf QCheck Testutil
