test/test_nscql.ml: Alcotest Containment Format List Nested QCheck String Testutil
