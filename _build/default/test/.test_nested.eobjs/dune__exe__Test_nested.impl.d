test/test_nested.ml: Alcotest Array Int List Nested QCheck String Testutil
