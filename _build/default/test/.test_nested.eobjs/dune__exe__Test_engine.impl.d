test/test_engine.ml: Alcotest Containment Datagen Fun Invfile List Printf Storage Testutil
