test/test_cli.ml: Alcotest Filename Fun List Printf String Sys Testutil
