test/test_matrix.mli:
