test/test_extensions.ml: Alcotest Array Char Containment Fun Int Invfile List Nested Option Printf QCheck Random Stack Storage String Testutil
