test/test_textformats.ml: Alcotest Containment Datagen List Nested Option QCheck Testutil Textformats
