test/test_containment.ml: Alcotest Array Containment Invfile List Nested Printf QCheck Testutil
