test/test_joins.ml: Alcotest Containment List Nested QCheck Testutil
