test/test_nested.mli:
