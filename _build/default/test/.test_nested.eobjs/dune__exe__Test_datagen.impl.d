test/test_datagen.ml: Alcotest Array Containment Datagen Float List Nested Random Testutil Textformats
