test/test_semantics.ml: Alcotest Containment List Nested QCheck Testutil
