(* Tests for the two containment algorithms under the default homomorphic
   semantics: the paper's worked example, hand-built edge cases, the
   published-top-down relaxation, and randomized agreement with the naive
   oracle. *)

module E = Containment.Engine
module S = Containment.Semantics

let hom_mode = S.mode_of S.Containment S.Hom

let run_all inv q =
  let q' = Containment.Query.of_value q in
  let td = Containment.Top_down.run hom_mode inv q' in
  let bu = Containment.Bottom_up.run hom_mode inv q' in
  let naive =
    Containment.Naive.scan ~scope:`Anywhere inv q'
  in
  (td, bu, naive)

let records ?(config = E.default) inv q = (E.query ~config inv q).E.records

let check_records = Alcotest.(check (list int))
let check_nodes = Alcotest.(check Testutil.intset_testable)
let check_bool = Alcotest.(check bool)

(* --- the paper's running example (Sec. 1-3) --- *)

let test_paper_example_all_algorithms () =
  let inv = Containment.Collection.paper_example () in
  let q = Containment.Collection.paper_example_query in
  List.iter
    (fun alg ->
      check_records "Tim only" [ 1 ]
        (records ~config:{ E.default with E.algorithm = alg } inv q))
    [ E.Top_down; E.Top_down_paper; E.Bottom_up; E.Naive_scan ]

let test_paper_example_sue_query () =
  let inv = Containment.Collection.paper_example () in
  (* 'people with a class A motorbike licence in the UK' — both qualify *)
  let q = Testutil.v "{{UK, {A, motorbike}}}" in
  check_records "both" [ 0; 1 ] (records inv q);
  (* C licence in the UK — only Sue *)
  check_records "Sue" [ 0 ] (records inv (Testutil.v "{{UK, {C}}}"))

let test_whole_record_is_contained_in_itself () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  List.iteri
    (fun i s ->
      let q = Testutil.v s in
      check_bool (Printf.sprintf "record %d self-contained" i) true
        (List.mem i (records inv q)))
    Testutil.licences_strings

(* --- hand-built semantics cases --- *)

let test_extra_material_allowed () =
  let inv = Testutil.mem_collection [ "{a, b, {c, d, {e}}, {f}}" ] in
  (* query is a sub-structure: hom allows s to have more *)
  check_records "subset matches" [ 0 ] (records inv (Testutil.v "{a, {c, {e}}}"));
  check_records "leaves only" [ 0 ] (records inv (Testutil.v "{b}"));
  check_records "missing leaf" [] (records inv (Testutil.v "{z}"));
  check_records "leaf at wrong level" [] (records inv (Testutil.v "{c}"))

let test_non_injective_hom () =
  (* two query children may map to the same data child *)
  let inv = Testutil.mem_collection [ "{x, {a, b}}" ] in
  check_records "both children onto one node" [ 0 ]
    (records inv (Testutil.v "{x, {a}, {b}}"))

let test_level_preservation () =
  let inv = Testutil.mem_collection [ "{a, {b, {c}}}" ] in
  check_records "c two levels down, query wants one" []
    (records inv (Testutil.v "{a, {c}}"));
  check_records "correct levels" [ 0 ] (records inv (Testutil.v "{a, {b, {c}}}"));
  check_records "skip level not allowed under hom" []
    (records inv (Testutil.v "{{c}}"))

let test_deep_nesting () =
  let deep = "{a, {b, {c, {d, {e, {f, {g}}}}}}}" in
  let inv = Testutil.mem_collection [ deep ] in
  check_records "exact deep chain" [ 0 ] (records inv (Testutil.v deep));
  check_records "deep prefix" [ 0 ]
    (records inv (Testutil.v "{{b, {c, {d}}}}"));
  check_records "wrong deep leaf" []
    (records inv (Testutil.v "{a, {b, {c, {d, {e, {f, {z}}}}}}}"))

let test_multiple_matches () =
  let inv =
    Testutil.mem_collection
      [ "{a, {b}}"; "{a, c, {b, d}}"; "{a}"; "{x, {a, {b}}}" ]
  in
  check_records "two full matches" [ 0; 1 ] (records inv (Testutil.v "{a, {b}}"));
  (* at Anywhere scope, record 3 contains the query at an inner node *)
  let r = E.query ~config:{ E.default with E.scope = E.Anywhere } inv (Testutil.v "{a, {b}}") in
  check_records "anywhere adds record 3" [ 0; 1; 3 ] r.E.records

let test_duplicate_leaves_collapse () =
  (* {a, a} is the set {a}: containment of {a} must match *)
  let inv = Testutil.mem_collection [ "{a, a, {b, b}}" ] in
  check_records "collapsed" [ 0 ] (records inv (Testutil.v "{a, {b}}"))

(* --- the published top-down variant (path containment) --- *)

(* The counterexample from DESIGN.md: below the root, two branching query
   children can be routed through different matches of their parent. *)
let branching_gap_data = "{x, {a, {b}}, {a, {c}}}"
let branching_gap_query = "{x, {a, {b}, {c}}}"

let test_paper_td_relaxation_gap () =
  let inv = Testutil.mem_collection [ branching_gap_data ] in
  let q = Testutil.v branching_gap_query in
  check_records "strict TD rejects" []
    (records ~config:{ E.default with E.algorithm = E.Top_down } inv q);
  check_records "bottom-up rejects" []
    (records ~config:{ E.default with E.algorithm = E.Bottom_up } inv q);
  check_records "naive rejects" []
    (records ~config:{ E.default with E.algorithm = E.Naive_scan } inv q);
  check_records "published TD accepts (path containment)" [ 0 ]
    (records ~config:{ E.default with E.algorithm = E.Top_down_paper } inv q)

let test_paper_td_root_level_consistent () =
  (* branching at the query root is anchored at the head itself, where hom
     legitimately allows different children to use different images — the
     published algorithm is exact for such queries *)
  let inv = Testutil.mem_collection [ "{x, {a, {b}}, {a, {c}}}"; "{x, {a, {b}}}" ] in
  let q = Testutil.v "{x, {a, {b}}, {a, {c}}}" in
  check_records "root branching positive" [ 0 ]
    (records ~config:{ E.default with E.algorithm = E.Top_down_paper } inv q);
  check_records "agrees with strict" [ 0 ]
    (records ~config:{ E.default with E.algorithm = E.Top_down } inv q);
  (* and when the root has no leaves, candidate heads multiply and the
     depth-≥1 relaxation applies below them, as documented *)
  let inv2 = Testutil.mem_collection [ "{{a, {b}}, {a, {c}}}" ] in
  let q2 = Testutil.v "{{a, {b}, {c}}}" in
  check_records "leafless root: relaxation applies" [ 0 ]
    (records ~config:{ E.default with E.algorithm = E.Top_down_paper } inv2 q2);
  check_records "strict rejects" []
    (records ~config:{ E.default with E.algorithm = E.Top_down } inv2 q2)

let prop_paper_td_overapproximates =
  Testutil.qcheck_case ~count:100 ~name:"published TD ⊇ strict TD"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value)
    (fun (values, q) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let q' = Containment.Query.of_value q in
      let strict = Containment.Top_down.run hom_mode inv q' in
      let paper = Containment.Top_down.run_paper hom_mode inv q' in
      Containment.Intset.subset strict paper)

(* --- leafless query nodes (node-table extension) --- *)

let test_leafless_query_nodes () =
  let inv = Testutil.mem_collection [ "{a, {{b}}}"; "{a, {b}}" ] in
  (* {{b}} requires a child-with-a-child-with-leaf-b *)
  check_records "double nesting" [ 0 ] (records inv (Testutil.v "{{{b}}}"));
  check_records "empty set query node matches any internal child" [ 0; 1 ]
    (records inv (Testutil.v "{a, {}}"))

let test_empty_query () =
  let inv = Testutil.mem_collection [ "{a}"; "{}" ] in
  (* {} has no constraints at the root: every record matches *)
  check_records "empty query" [ 0; 1 ] (records inv (Testutil.v "{}"))

let test_atom_query_rejected () =
  let inv = Testutil.mem_collection [ "{a}" ] in
  match E.query inv (Nested.Value.atom "a") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- agreement properties --- *)

let prop_algorithms_agree =
  Testutil.qcheck_case ~count:300 ~name:"TD = BU = naive (hom, any node)"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_value)
    (fun (values, q) ->
      QCheck.assume (Nested.Value.is_set q);
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let td, bu, naive = run_all inv q in
      td = bu && bu = naive)

let prop_subquery_always_contained =
  Testutil.qcheck_case ~count:200 ~name:"random subquery of a record matches it"
    (QCheck.pair (Testutil.arbitrary_collection ~records:6 ()) QCheck.(int_bound 5))
    (fun (values, pick) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let idx = pick mod List.length values in
      let source = List.nth values idx in
      let q =
        QCheck.Gen.generate1 (fun st -> Testutil.shrink_to_subquery st source)
      in
      let inv = Containment.Collection.of_values values in
      let result = E.query inv q in
      List.mem idx result.E.records)

let prop_fresh_atom_never_matches =
  Testutil.qcheck_case ~count:100 ~name:"query with fresh atom matches nothing"
    (Testutil.arbitrary_collection ())
    (fun values ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let q = Nested.Value.set [ Nested.Value.atom "⊥fresh" ] in
      (E.query inv q).E.records = [])

let prop_reflexive =
  Testutil.qcheck_case ~count:200 ~name:"q ⊆ q (reflexivity via singleton collection)"
    Testutil.arbitrary_value (fun q ->
      QCheck.assume (Nested.Value.is_set q);
      let inv = Containment.Collection.of_values [ q ] in
      (E.query inv q).E.records = [ 0 ])

let prop_monotone_under_record_extension =
  Testutil.qcheck_case ~count:150 ~name:"adding material to a record preserves matches"
    (QCheck.pair Testutil.arbitrary_value Testutil.arbitrary_value)
    (fun (q, extra) ->
      QCheck.assume (Nested.Value.is_set q);
      let fat = Nested.Value.add extra q in
      QCheck.assume (Nested.Value.is_set fat);
      let inv = Containment.Collection.of_values [ fat ] in
      (E.query inv q).E.records = [ 0 ])

(* --- result equivalence between scopes --- *)

let test_roots_is_root_filter_of_anywhere () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let q = Testutil.v "{UK, {A, motorbike}}" in
  let roots = (E.query inv q).E.nodes in
  let anywhere =
    (E.query ~config:{ E.default with E.scope = E.Anywhere } inv q).E.nodes
  in
  check_nodes "roots ⊆ anywhere" roots
    (Array.of_list
       (List.filter
          (fun id -> Invfile.Inverted_file.is_root inv id)
          (Array.to_list anywhere)))

let () =
  Alcotest.run "containment"
    [
      ( "paper example",
        [
          Alcotest.test_case "all algorithms, Sec. 1 query" `Quick
            test_paper_example_all_algorithms;
          Alcotest.test_case "more queries on Table 1" `Quick
            test_paper_example_sue_query;
          Alcotest.test_case "records contain themselves" `Quick
            test_whole_record_is_contained_in_itself;
        ] );
      ( "hom semantics",
        [
          Alcotest.test_case "extra material allowed" `Quick test_extra_material_allowed;
          Alcotest.test_case "non-injective" `Quick test_non_injective_hom;
          Alcotest.test_case "level preservation" `Quick test_level_preservation;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "multiple matches + scopes" `Quick test_multiple_matches;
          Alcotest.test_case "duplicate leaves collapse" `Quick
            test_duplicate_leaves_collapse;
        ] );
      ( "published top-down variant",
        [
          Alcotest.test_case "branching gap below root" `Quick
            test_paper_td_relaxation_gap;
          Alcotest.test_case "root-level branching exact" `Quick
            test_paper_td_root_level_consistent;
          prop_paper_td_overapproximates;
        ] );
      ( "extensions beyond the paper",
        [
          Alcotest.test_case "leafless query nodes" `Quick test_leafless_query_nodes;
          Alcotest.test_case "empty query" `Quick test_empty_query;
          Alcotest.test_case "atom query rejected" `Quick test_atom_query_rejected;
        ] );
      ( "agreement",
        [
          prop_algorithms_agree;
          prop_subquery_always_contained;
          prop_fresh_atom_never_matches;
          prop_reflexive;
          prop_monotone_under_record_extension;
          Alcotest.test_case "scope consistency" `Quick
            test_roots_is_root_filter_of_anywhere;
        ] );
    ]
