(* Exhaustive small-universe verification.

   Enumerates EVERY canonical nested set over a 2-atom universe up to a
   structural budget, indexes the whole universe as one collection, and
   checks every (query, record) pair under every algorithm, join type, and
   embedding semantics against the value-level oracle. Complements the
   random qcheck properties with complete coverage of the small cases where
   algorithmic corner cases live (empty sets, leafless nodes, duplicate
   collapse, sibling sharing). *)

module E = Containment.Engine
module S = Containment.Semantics
module V = Nested.Value

(* All canonical sets with at most [budget] total elements spent across the
   whole tree (atoms cost 1, subsets cost 1 + their own budget). *)
let enumerate ~atoms ~budget =
  let module VS = Set.Make (struct
    type t = V.t

    let compare = V.compare
  end) in
  (* sets_of b: all canonical set values of structural cost ≤ b, where the
     cost of a set is 1 + sum of element costs *)
  let memo = Hashtbl.create 16 in
  let rec sets_of b =
    match Hashtbl.find_opt memo b with
    | Some s -> s
    | None ->
      let result =
        if b < 1 then VS.empty
        else begin
          (* elements available with cost ≤ b - 1 *)
          let element_pool =
            List.map V.atom atoms @ VS.elements (sets_of (b - 2))
          in
          (* subsets of the pool whose members fit the budget; the pool is
             small enough to enumerate subsets directly *)
          let rec subsets acc pool budget_left =
            match pool with
            | [] -> VS.singleton (V.set acc)
            | x :: rest ->
              let without = subsets acc rest budget_left in
              let c = if V.is_atom x then 1 else V.size x in
              if c <= budget_left then
                VS.union without (subsets (x :: acc) rest (budget_left - c))
              else without
          in
          subsets [] element_pool (b - 1)
        end
      in
      Hashtbl.replace memo b result;
      result
  in
  VS.elements (sets_of budget)

let universe = enumerate ~atoms:[ "a"; "b" ] ~budget:6

let test_universe_sane () =
  Alcotest.(check bool) "non-trivial universe" true (List.length universe > 100);
  Alcotest.(check bool) "contains the empty set" true
    (List.exists (V.equal V.empty) universe);
  Alcotest.(check bool) "contains nesting" true
    (List.exists (fun v -> V.depth v >= 3) universe);
  (* all distinct and canonical *)
  let sorted = List.sort_uniq V.compare universe in
  Alcotest.(check int) "all distinct" (List.length universe) (List.length sorted)

let inv = lazy (Containment.Collection.of_values universe)

let oracle join embedding q =
  List.mapi (fun i s -> (i, s)) universe
  |> List.filter_map (fun (i, s) ->
         match Containment.Embed.check join embedding ~q ~s with
         | true -> Some i
         | false -> None
         | exception S.Unsupported _ -> raise Exit)

let check_combination ~label ~algorithms join embedding () =
  let inv = Lazy.force inv in
  List.iter
    (fun q ->
      match oracle join embedding q with
      | exception Exit -> ()
      | expected ->
        List.iter
          (fun (alg_name, algorithm) ->
            let config = { E.default with E.algorithm; E.join; E.embedding } in
            let got = (E.query ~config inv q).E.records in
            if got <> expected then
              Alcotest.failf "%s/%s disagrees with oracle on %s: [%s] vs [%s]"
                label alg_name (V.to_string q)
                (String.concat ";" (List.map string_of_int got))
                (String.concat ";" (List.map string_of_int expected)))
          algorithms)
    universe

let both = [ ("bottom-up", E.Bottom_up); ("top-down", E.Top_down) ]

let exhaustive label join embedding =
  Alcotest.test_case label `Slow
    (check_combination ~label ~algorithms:both join embedding)

let test_published_td_superset_of_strict () =
  (* the published variant may over-approximate but never under-approximate *)
  let inv = Lazy.force inv in
  List.iter
    (fun q ->
      let strict =
        (E.query ~config:{ E.default with E.algorithm = E.Top_down } inv q).E.records
      in
      let paper =
        (E.query ~config:{ E.default with E.algorithm = E.Top_down_paper } inv q)
          .E.records
      in
      List.iter
        (fun i ->
          if not (List.mem i paper) then
            Alcotest.failf "published TD lost a match on %s" (V.to_string q))
        strict)
    universe

let test_verified_equality_exhaustive () =
  let inv = Lazy.force inv in
  List.iter
    (fun q ->
      let got =
        (E.query
           ~config:{ E.default with E.join = S.Equality; E.verify = true }
           inv q)
          .E.records
      in
      let expected =
        List.mapi (fun i s -> (i, s)) universe
        |> List.filter_map (fun (i, s) -> if V.equal q s then Some i else None)
      in
      if got <> expected then
        Alcotest.failf "verified equality wrong on %s" (V.to_string q))
    universe

let () =
  Alcotest.run "exhaustive"
    [
      ( "universe",
        [ Alcotest.test_case "enumeration sane" `Quick test_universe_sane ] );
      ( "all pairs vs oracle",
        [
          exhaustive "containment × hom" S.Containment S.Hom;
          exhaustive "containment × iso" S.Containment S.Iso;
          exhaustive "containment × homeo" S.Containment S.Homeo;
          exhaustive "containment × homeo-full" S.Containment S.Homeo_full;
          exhaustive "superset × hom" S.Superset S.Hom;
          exhaustive "overlap-1 × hom" (S.Overlap 1) S.Hom;
          exhaustive "overlap-2 × iso" (S.Overlap 2) S.Iso;
          exhaustive "similarity-0.5 × hom" (S.Similarity 0.5) S.Hom;
        ] );
      ( "variants",
        [
          Alcotest.test_case "published ⊇ strict" `Slow
            test_published_td_superset_of_strict;
          Alcotest.test_case "verified equality exact" `Slow
            test_verified_equality_exhaustive;
        ] );
    ]
