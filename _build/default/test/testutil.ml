(* Shared helpers for all test suites: generators for random nested values
   and collections, Alcotest testables, and temp-file plumbing. *)

module V = Nested.Value

let value_testable = Alcotest.testable V.pp V.equal

let intset_testable =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "[%s]"
        (String.concat "; " (List.map string_of_int (Array.to_list s))))
    (fun a b -> a = b)

(* --- QCheck generators --- *)

(* A small atom alphabet forces label collisions, which is what makes
   containment queries interesting. *)
let gen_atom_string = QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]

(* Random set value with bounded fanout and depth. *)
let rec gen_set ~max_depth ~max_width st =
  let open QCheck.Gen in
  let n_leaves = int_range 0 max_width st in
  let leaves = List.init n_leaves (fun _ -> V.atom (gen_atom_string st)) in
  let n_children = if max_depth <= 1 then 0 else int_range 0 (max_width / 2) st in
  let children =
    List.init n_children (fun _ -> gen_set ~max_depth:(max_depth - 1) ~max_width st)
  in
  V.set (leaves @ children)

(* Never generates the problematic all-empty shapes too often but does
   include them: leafless and empty sets occur naturally. *)
let gen_value ?(max_depth = 4) ?(max_width = 5) () =
  QCheck.Gen.map
    (fun v -> v)
    (fun st -> gen_set ~max_depth ~max_width st)

(* A set value where every node has at least one leaf — the fragment the
   paper's base algorithms support. *)
let rec gen_leafy_set ~max_depth ~max_width st =
  let open QCheck.Gen in
  let n_leaves = int_range 1 (max 1 max_width) st in
  let leaves = List.init n_leaves (fun _ -> V.atom (gen_atom_string st)) in
  let n_children = if max_depth <= 1 then 0 else int_range 0 (max_width / 2) st in
  let children =
    List.init n_children (fun _ -> gen_leafy_set ~max_depth:(max_depth - 1) ~max_width st)
  in
  V.set (leaves @ children)

let arbitrary_value =
  QCheck.make ~print:V.to_string (fun st -> gen_set ~max_depth:4 ~max_width:5 st)

let arbitrary_leafy_value =
  QCheck.make ~print:V.to_string (fun st -> gen_leafy_set ~max_depth:4 ~max_width:5 st)

let arbitrary_collection ?(records = 12) () =
  QCheck.make
    ~print:(fun vs -> String.concat "\n" (List.map V.to_string vs))
    (fun st -> List.init records (fun _ -> gen_set ~max_depth:3 ~max_width:4 st))

(* Subqueries of a value: take a subset of elements recursively — always
   contained in the original under hom semantics. *)
let rec shrink_to_subquery st v =
  if V.is_atom v then v
  else begin
    let elems = V.elements v in
    let kept =
      List.filter_map
        (fun e ->
          if QCheck.Gen.bool st then None
          else if V.is_set e then Some (shrink_to_subquery st e)
          else Some e)
        elems
    in
    V.set kept
  end

let qcheck_case ?(count = 200) ~name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- temp files --- *)

let temp_path suffix =
  Filename.temp_file "nscq_test_" suffix

let with_temp_path suffix f =
  let path = temp_path suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- tiny deterministic collections --- *)

let licences_strings =
  [
    "{London, UK, {UK, {A, B, C, car, motorbike}}, {UK, {A, motorbike}}}";
    "{Boston, USA, {USA, VA, {A, B, car}}, {UK, {A, motorbike}}}";
    "{Paris, FR, {FR, {B, car}}, {DE, {B, car, truck}}}";
    "{Austin, USA, {USA, TX, {A, motorbike}}, {UK, {A, motorbike}}}";
  ]

let mem_collection strings = Containment.Collection.of_strings strings

let v = Nested.Syntax.of_string
