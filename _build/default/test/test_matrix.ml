(* Configuration-matrix integration tests: one deterministic workload
   evaluated across every storage backend × postings codec × record format
   × algorithm combination, all required to produce identical answers.
   Complements the per-feature suites by exercising the combinations
   together (where integration bugs live). *)

module E = Containment.Engine
module S = Containment.Semantics
module IF = Invfile.Inverted_file

let values =
  lazy
    (Datagen.Synthetic.values
       (Datagen.Synthetic.make ~seed:77
          ~params:(Datagen.Synthetic.params_of_shape Datagen.Synthetic.Wide)
          (Datagen.Synthetic.Zipfian 0.7))
       120)

let queries inv =
  Datagen.Workload.values (Datagen.Workload.benchmark_queries ~seed:5 ~count:16 inv)

(* answers from the reference configuration: Mem / Varint / Syntax / BU *)
let expected =
  lazy
    (let inv = Containment.Collection.of_values (Lazy.force values) in
     List.map (fun q -> (E.query inv q).E.records) (queries inv))

let backends =
  [
    ("mem", fun () -> (Containment.Collection.Mem, fun () -> ()));
    ( "hash",
      fun () ->
        let path = Testutil.temp_path ".tch" in
        ( Containment.Collection.Hash path,
          fun () -> try Sys.remove path with Sys_error _ -> () ) );
    ( "btree",
      fun () ->
        let path = Testutil.temp_path ".tcb" in
        ( Containment.Collection.Btree path,
          fun () -> try Sys.remove path with Sys_error _ -> () ) );
    ( "log",
      fun () ->
        let path = Testutil.temp_path ".klog" in
        ( Containment.Collection.Log path,
          fun () -> try Sys.remove path with Sys_error _ -> () ) );
  ]

let codecs = [ ("varint", Invfile.Plist.Varint); ("bitpacked", Invfile.Plist.Bitpacked) ]
let formats = [ ("syntax", `Syntax); ("binary", `Binary) ]

let algorithms =
  [ ("bottom-up", E.Bottom_up); ("top-down", E.Top_down);
    ("top-down-paper", E.Top_down_paper); ("naive", E.Naive_scan) ]

let check_combination backend_name mk_backend codec_name codec fmt_name record_format
    () =
  let backend, cleanup = mk_backend () in
  Fun.protect ~finally:cleanup @@ fun () ->
  let inv =
    Containment.Collection.of_values ~backend ~codec ~record_format
      (Lazy.force values)
  in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  (* also exercise the cache on the heavier stores *)
  if backend_name <> "mem" then Containment.Collection.with_static_cache inv ~budget:50;
  List.iter2
    (fun q expected ->
      List.iter
        (fun (alg_name, algorithm) ->
          let got = (E.query ~config:{ E.default with E.algorithm } inv q).E.records in
          if got <> expected then
            Alcotest.failf "%s/%s/%s/%s diverged on %s" backend_name codec_name
              fmt_name alg_name (Nested.Value.to_string q))
        algorithms)
    (queries inv) (Lazy.force expected)

let cases =
  List.concat_map
    (fun (bname, mk) ->
      List.concat_map
        (fun (cname, codec) ->
          List.map
            (fun (fname, fmt) ->
              Alcotest.test_case
                (Printf.sprintf "%s × %s × %s" bname cname fname)
                `Slow
                (check_combination bname mk cname codec fname fmt))
            formats)
        codecs)
    backends

let () = Alcotest.run "matrix" [ ("backend × codec × format × algorithm", cases) ]
