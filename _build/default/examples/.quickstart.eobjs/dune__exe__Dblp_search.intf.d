examples/dblp_search.mli:
