examples/twitter_analytics.mli:
