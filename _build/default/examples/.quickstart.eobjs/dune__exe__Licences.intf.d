examples/licences.mli:
