examples/provenance.mli:
