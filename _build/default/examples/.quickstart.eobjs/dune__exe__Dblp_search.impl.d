examples/dblp_search.ml: Buffer Containment Datagen Format Invfile List Nested Printf Textformats Unix
