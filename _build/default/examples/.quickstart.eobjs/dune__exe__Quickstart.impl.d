examples/quickstart.ml: Containment Format Invfile List Nested
