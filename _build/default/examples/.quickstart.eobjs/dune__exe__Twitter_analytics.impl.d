examples/twitter_analytics.ml: Buffer Containment Datagen Float Format Invfile List Nested Textformats Unix
