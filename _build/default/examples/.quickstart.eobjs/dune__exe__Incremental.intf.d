examples/incremental.mli:
