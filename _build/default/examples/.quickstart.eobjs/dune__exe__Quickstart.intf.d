examples/quickstart.mli:
