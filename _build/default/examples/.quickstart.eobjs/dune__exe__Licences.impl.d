examples/licences.ml: Array Containment Datagen Filename Format Fun Invfile List Nested Random Storage String Sys
