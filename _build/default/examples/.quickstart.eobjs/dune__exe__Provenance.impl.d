examples/provenance.ml: Array Containment Format Invfile List Nested Printf Random
