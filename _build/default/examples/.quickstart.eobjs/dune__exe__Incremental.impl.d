examples/incremental.ml: Containment Format Invfile List Nested String
