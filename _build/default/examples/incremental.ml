(* A live registry: incremental inserts and deletes on an existing
   collection, with queries staying consistent throughout — the maintenance
   layer a deployed system needs on top of the paper's build-once index.

     dune exec examples/incremental.exe *)

module E = Containment.Engine
module IF = Invfile.Inverted_file

let show inv label q =
  let r = E.query inv (Nested.Syntax.of_string q) in
  Format.printf "%-44s -> %d record(s): [%s]@." label
    (List.length r.E.records)
    (String.concat "; " (List.map string_of_int r.E.records))

let () =
  (* Start from the paper's two-record collection. *)
  let inv = Containment.Collection.paper_example () in
  Format.printf "Initial collection: Sue (0), Tim (1)@.@.";
  let q_uk = "{{UK, {A, motorbike}}}" in
  show inv "UK class-A motorbike holders" q_uk;

  (* A new resident arrives. *)
  let ada = "{Utrecht, NL, {NL, {B, car}}, {UK, {A, motorbike}}}" in
  let ada_id = Invfile.Updater.add_string inv ada in
  Format.printf "@.+ added Ada as record %d@." ada_id;
  show inv "UK class-A motorbike holders" q_uk;
  show inv "residents of Utrecht" "{Utrecht}";

  (* Tim emigrates. *)
  ignore (Invfile.Updater.delete_record inv 1);
  Format.printf "@.- deleted Tim (record 1; ids of other records are stable)@.";
  show inv "UK class-A motorbike holders" q_uk;
  show inv "residents of Boston" "{Boston}";

  (* Ada upgrades her licence: update = delete + re-insert. *)
  ignore (Invfile.Updater.delete_record inv ada_id);
  let ada' = "{Utrecht, NL, {NL, {B, car}}, {UK, {A, motorbike}}, {DE, {C, truck}}}" in
  let ada_id' = Invfile.Updater.add_string inv ada' in
  Format.printf "@.~ updated Ada (new record id %d; old id tombstoned)@." ada_id';
  show inv "can drive a truck in DE" "{{DE, {truck}}}";

  (* The collection stays equivalent to a from-scratch rebuild. *)
  let rebuilt =
    Containment.Collection.of_values
      (let out = ref [] in
       IF.iter_records inv (fun _ v -> out := v :: !out);
       List.rev !out)
  in
  let same q =
    List.length (E.query inv (Nested.Syntax.of_string q)).E.records
    = List.length (E.query rebuilt (Nested.Syntax.of_string q)).E.records
  in
  Format.printf "@.consistency with a rebuilt index: %b@."
    (List.for_all same [ q_uk; "{Utrecht}"; "{Boston}"; "{{DE, {truck}}}" ]);

  (* Statistics survive the churn. *)
  Format.printf "@.records (incl. tombstones): %d, live atoms: %d, nodes ever: %d@."
    (IF.record_count inv) (IF.atom_count inv) (IF.node_count inv)
