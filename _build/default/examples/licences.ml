(* Driving-licence registry at scale: the Table-1 scenario blown up to a
   few thousand synthetic residents, stored in the on-disk hash store with
   the paper's static cache, queried with a mixed workload.

     dune exec examples/licences.exe *)

module E = Containment.Engine
module S = Containment.Semantics
module V = Nested.Value

let cities =
  [| "London"; "Boston"; "Paris"; "Austin"; "Berlin"; "Utrecht"; "Eindhoven";
     "Porto"; "Kyoto"; "Oslo" |]

let countries = [| "UK"; "USA"; "FR"; "DE"; "NL"; "PT"; "JP"; "NO" |]
let regions = [| "VA"; "TX"; "CA"; "NY"; "BY"; "NH"; "ZH" |]
let classes = [| "A"; "B"; "C"; "D" |]
let vehicles = [| "car"; "motorbike"; "truck"; "bus" |]

let pick rng a = a.(Random.State.int rng (Array.length a))

let some_of rng a =
  (* non-empty random subset *)
  let n = 1 + Random.State.int rng (Array.length a - 1) in
  List.init n (fun _ -> pick rng a) |> List.sort_uniq String.compare

(* One resident: {city, country, {locale…, {classes…, vehicles…}}…} —
   exactly the nesting of Table 1. *)
let resident rng =
  let home_country = pick rng countries in
  let privileges =
    List.init
      (1 + Random.State.int rng 3)
      (fun _ ->
        let locale = [ pick rng countries ] in
        let locale =
          if Random.State.bool rng then pick rng regions :: locale else locale
        in
        let licence = some_of rng classes @ some_of rng vehicles in
        V.set (List.map V.atom locale @ [ V.of_atoms licence ]))
  in
  V.set (V.atom (pick rng cities) :: V.atom home_country :: privileges)

let () =
  let n = 5_000 in
  let rng = Random.State.make [| 2013 |] in
  let path = Filename.temp_file "licences" ".nscq" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* Build on the external hash store, as the paper does with Tokyo Cabinet. *)
  let store = Storage.Hash_store.create ~buckets:16384 path in
  let builder = Invfile.Builder.create store in
  for _ = 1 to n do
    ignore (Invfile.Builder.add_value builder (resident rng))
  done;
  let inv = Invfile.Builder.finish builder in
  Format.printf "Indexed %d residents (%d distinct atoms, %d nodes) at %s@.@."
    (Invfile.Inverted_file.record_count inv)
    (Invfile.Inverted_file.atom_count inv)
    (Invfile.Inverted_file.node_count inv)
    path;

  (* The paper's Sec. 3.3 cache: 250 hottest inverted lists in memory. *)
  Containment.Collection.with_static_cache inv ~budget:250;

  let count config q =
    List.length (E.query ~config inv (Nested.Syntax.of_string q)).E.records
  in
  let q1 = "{{UK, {A, motorbike}}}" in
  let q2 = "{USA, {USA, TX, {B, car}}}" in
  let q3 = "{{DE, {truck}}, {FR, {car}}}" in
  Format.printf "UK class-A motorbike licence holders:         %6d@." (count E.default q1);
  Format.printf "Texans with a class-B car licence at home:    %6d@." (count E.default q2);
  Format.printf "Can truck in DE and drive in FR:              %6d@.@." (count E.default q3);

  (* Semantics variations. *)
  let hom = count E.default "{{NL, {C, bus}}}" in
  let iso = count { E.default with E.embedding = S.Iso } "{{NL, {C, bus}}}" in
  Format.printf "NL class-C bus (hom %d / iso %d)@." hom iso;
  let homeo = count { E.default with E.embedding = S.Homeo } "{{motorbike}}" in
  Format.printf "Licence set mentioning a motorbike anywhere below a privilege (homeo): %d@.@."
    homeo;

  (* ε-overlap: approximately-similar residents. *)
  let me = resident rng in
  Format.printf "A fresh resident: %a@." V.pp me;
  List.iter
    (fun eps ->
      let r = E.query ~config:{ E.default with E.join = S.Overlap eps } inv me in
      Format.printf "  residents sharing ≥%d top-level values: %d@." eps
        (List.length r.E.records))
    [ 1; 2 ];

  (* Workload timing with and without the cache, as in Sec. 5. *)
  let queries =
    Datagen.Workload.values (Datagen.Workload.benchmark_queries ~count:100 inv)
  in
  Invfile.Inverted_file.detach_cache inv;
  let cold = E.run_workload inv queries in
  Containment.Collection.with_static_cache inv ~budget:250;
  let warm = E.run_workload inv queries in
  Format.printf "@.100-query benchmark (50 positive / 50 negative):@.";
  Format.printf "  no cache : %a@." E.pp_workload_stats cold;
  Format.printf "  cache 250: %a@." E.pp_workload_stats warm;
  Invfile.Inverted_file.close inv
