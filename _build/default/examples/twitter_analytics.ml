(* Web analytics over nested JSON, as in the paper's Experiment 3: a
   Twitter-style collection is parsed from JSON lines, mapped into nested
   sets, indexed, and mined with containment queries.

     dune exec examples/twitter_analytics.exe *)

module E = Containment.Engine
module J = Textformats.Json

let () =
  (* 1. Materialize a JSON-lines corpus (the stand-in for the Search API
        dump), then parse it back — the full ingestion path. *)
  let g = Datagen.Twitter_sim.make ~seed:7 ~users:2_000 ~hashtags:300 () in
  let n = 20_000 in
  let corpus = Buffer.create (n * 200) in
  for _ = 1 to n do
    Buffer.add_string corpus (J.to_string (Datagen.Twitter_sim.tweet_json g));
    Buffer.add_char corpus '\n'
  done;
  let jsons = J.parse_many (Buffer.contents corpus) in
  Format.printf "Parsed %d tweets from %d bytes of JSON@." (List.length jsons)
    (Buffer.length corpus);

  (* 2. Map into nested sets and index. *)
  let inv =
    Containment.Collection.of_values (List.map Textformats.Json_nested.of_json jsons)
  in
  Containment.Collection.with_static_cache inv ~budget:250;
  Format.printf "Indexed: %d atoms, %d internal nodes@.@."
    (Invfile.Inverted_file.atom_count inv)
    (Invfile.Inverted_file.node_count inv);

  (* 3. Who talks the most? Popular users dominate (skew). *)
  Format.printf "Tweets per user rank (Zipf skew — 'popular users dominate'):@.";
  List.iter
    (fun rank ->
      let q =
        Datagen.Twitter_sim.user_query
          ~screen_name:(Datagen.Twitter_sim.screen_name rank)
      in
      Format.printf "  user rank %-4d: %5d tweets@." rank
        (List.length (E.query inv q).E.records))
    [ 1; 2; 10; 100; 1000 ];

  (* 4. Hashtag analytics and conjunctive patterns. *)
  let tag1 = Datagen.Twitter_sim.hashtag 1 in
  let top_tag = E.query inv (Datagen.Twitter_sim.hashtag_query ~tag:tag1) in
  Format.printf "@.Tweets with top hashtag #%s: %d@." tag1
    (List.length top_tag.E.records);

  (* verified users tweeting the top hashtag — a nested conjunctive query *)
  let q_verified_tag =
    Textformats.Json_nested.query
      [
        ("user", Textformats.Json_nested.query [ ("verified", Nested.Value.atom "true") ]);
        ( "entities",
          Textformats.Json_nested.query
            [
              ( "hashtags",
                Nested.Value.set
                  [ Textformats.Json_nested.query [ ("text", Nested.Value.atom tag1) ] ]
              );
            ] );
      ]
  in
  let r = E.query inv q_verified_tag in
  Format.printf "…of which by verified users: %d@." (List.length r.E.records);
  (match E.record_values inv { r with E.records = (match r.E.records with [] -> [] | x :: _ -> [ x ]) } with
  | [ v ] -> Format.printf "  e.g. %a@." Nested.Value.pp v
  | _ -> ());

  (* 5. The same question answered by the naive scan, with timing. *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let _, t_indexed = time (fun () -> E.query inv q_verified_tag) in
  let _, t_naive =
    time (fun () ->
        E.query ~config:{ E.default with E.algorithm = E.Naive_scan } inv q_verified_tag)
  in
  Format.printf "@.bottom-up: %.2f ms    naive scan: %.2f ms    (speedup ×%.0f)@."
    (1000. *. t_indexed) (1000. *. t_naive)
    (t_naive /. Float.max 1e-9 t_indexed)
