(* Scientific-workflow provenance — the paper's opening motivation: nested
   structure "occurs in scientific workflows, business process management".

   Each record is one workflow run: a nested set of steps, each step a set
   of {tool, version, parameter-bindings, input/output datasets}, with
   sub-workflows nested inside steps. Containment queries answer the
   classic provenance questions: which runs used tool X with parameter Y?
   which runs embed this whole (partial) pipeline? which runs are
   sub-pipelines of a reference run (superset join)?

     dune exec examples/provenance.exe *)

module E = Containment.Engine
module S = Containment.Semantics
module V = Nested.Value

let tools = [| "bwa"; "samtools"; "gatk"; "fastqc"; "star"; "salmon"; "picard" |]
let refs = [| "GRCh38"; "GRCm39"; "TAIR10" |]

let pick rng a = a.(Random.State.int rng (Array.length a))

let atom = V.atom
let set = V.set

(* One step: {tool, v<major>, {param, value}, {in, dataset}, {out, dataset}} *)
let rec step rng depth =
  let tool = pick rng tools in
  let version = Printf.sprintf "v%d.%d" (1 + Random.State.int rng 4) (Random.State.int rng 10) in
  let params =
    List.init (Random.State.int rng 3) (fun _ ->
        set
          [ atom (Printf.sprintf "-t%d" (1 + Random.State.int rng 16));
            atom (pick rng refs) ])
  in
  let io =
    [ set [ atom "in"; atom (Printf.sprintf "ds%04d" (Random.State.int rng 2000)) ];
      set [ atom "out"; atom (Printf.sprintf "ds%04d" (Random.State.int rng 2000)) ] ]
  in
  let sub =
    (* occasionally a nested sub-workflow *)
    if depth < 2 && Random.State.float rng 1. < 0.15 then
      [ set (List.init (1 + Random.State.int rng 2) (fun _ -> step rng (depth + 1))) ]
    else []
  in
  set ((atom tool :: atom version :: params) @ io @ sub)

and run rng =
  let n_steps = 2 + Random.State.int rng 5 in
  set
    (atom (Printf.sprintf "run%05d" (Random.State.int rng 100000))
    :: atom (pick rng [| "alice"; "bob"; "carol" |])
    :: List.init n_steps (fun _ -> step rng 0))

let () =
  let rng = Random.State.make [| 1723 |] in
  let n = 8_000 in
  let inv = Containment.Collection.of_values (List.init n (fun _ -> run rng)) in
  Containment.Collection.with_static_cache inv ~budget:250;
  Format.printf "Indexed %d workflow runs (%d atoms, %d nodes)@.@." n
    (Invfile.Inverted_file.atom_count inv)
    (Invfile.Inverted_file.node_count inv);

  let count ?(config = E.default) q =
    List.length (E.query ~config inv (Nested.Syntax.of_string q)).E.records
  in
  (* which runs invoked gatk at all? *)
  Format.printf "runs with a gatk step:                       %5d@." (count "{{gatk}}");
  (* ... specifically gatk v2.* against GRCh38 *)
  Format.printf "runs with gatk on GRCh38:                    %5d@."
    (count "{{gatk, {-t8, GRCh38}}}");
  (* pipeline pattern: bwa followed-by (contains) samtools, both present *)
  Format.printf "runs embedding the bwa+samtools pipeline:    %5d@."
    (count "{{bwa}, {samtools}}");
  (* provenance of a dataset: which runs read ds0042? *)
  Format.printf "runs reading dataset ds0042:                 %5d@."
    (count "{{{in, ds0042}}}");
  (* the same under fully-homeomorphic semantics: the dataset may appear at
     any nesting depth (inside sub-workflows too) *)
  Format.printf "… at any depth (fully homeomorphic):         %5d@."
    (count ~config:{ E.default with E.embedding = S.Homeo_full } "{ds0042}");

  (* witnesses: show where the pattern embeds in the first match *)
  let q = Nested.Syntax.of_string "{{gatk, {-t8, GRCh38}}}" in
  (match E.witnesses inv q with
  | (root, w) :: _ ->
    Format.printf "@.example embedding (record root %d):@." root;
    List.iter
      (fun (path, id) ->
        Format.printf "  %-10s -> %a@." path V.pp
          (Invfile.Inverted_file.subtree_value inv id))
      w
  | [] -> Format.printf "@.(no gatk/-t8/GRCh38 run in this sample)@.");

  (* sub-pipeline detection: stored runs contained in a reference run *)
  let reference = Invfile.Inverted_file.record_value inv 0 in
  let subs =
    E.query ~config:{ E.default with E.join = S.Superset } inv reference
  in
  Format.printf "@.stored runs that are sub-runs of record 0: %d@."
    (List.length subs.E.records)
