(* Bibliographic search over DBLP-style XML, as in the paper's Experiment 3:
   article records are parsed from XML, mapped into nested sets with
   tokenized titles, and searched with containment queries under several
   semantics — including a Bloom-prefiltered negative workload.

     dune exec examples/dblp_search.exe *)

module E = Containment.Engine
module S = Containment.Semantics
module X = Textformats.Xml

let () =
  (* 1. Materialize an XML corpus and parse it back. *)
  let g = Datagen.Dblp_sim.make ~seed:11 ~authors:5_000 ~venues:200 () in
  let n = 20_000 in
  let corpus = Buffer.create (n * 200) in
  Buffer.add_string corpus "<?xml version=\"1.0\"?>\n<!-- synthetic dblp -->\n";
  for _ = 1 to n do
    Buffer.add_string corpus (X.to_string (Datagen.Dblp_sim.article_xml g));
    Buffer.add_char corpus '\n'
  done;
  let elements = X.parse_many (Buffer.contents corpus) in
  Format.printf "Parsed %d records from %d bytes of XML@." (List.length elements)
    (Buffer.length corpus);

  (* 2. Map and index (titles tokenized into keyword atoms). *)
  let values = List.map (Textformats.Xml_nested.of_xml ~tokenize:true) elements in
  let inv = Containment.Collection.of_values values in
  Containment.Collection.with_static_cache inv ~budget:250;

  (* 3. Author search. *)
  let prolific = Datagen.Dblp_sim.author_name 1 in
  let q_author = Datagen.Dblp_sim.author_query ~author:prolific in
  Format.printf "@.Records by %s: %d@." prolific
    (List.length (E.query inv q_author).E.records);

  (* 4. Keyword + venue conjunctions; journal vs conference record types. *)
  let kw k = Nested.Value.set [ Textformats.Xml_nested.element "title" [ Nested.Value.atom k ] ] in
  Format.printf "Title keyword kw1: %d records@."
    (List.length (E.query inv (kw "kw1")).E.records);
  let journal_article_by_author =
    Nested.Value.set
      [
        Nested.Value.atom "article";
        Textformats.Xml_nested.element "author" [ Nested.Value.atom prolific ];
      ]
  in
  Format.printf "…journal articles by the same author: %d@."
    (List.length (E.query inv journal_article_by_author).E.records);

  (* 5. Level-agnostic search with homeomorphic semantics: find the venue
        string anywhere below the record root. *)
  let venue = Datagen.Dblp_sim.venue_name 1 in
  let q_homeo = Nested.Value.set [ Nested.Value.set [ Nested.Value.atom venue ] ] in
  let r_homeo =
    E.query ~config:{ E.default with E.embedding = S.Homeo } inv q_homeo
  in
  Format.printf "@.Records mentioning %s at any depth (homeo): %d@." venue
    (List.length r_homeo.E.records);

  (* 6. Bloom prefilter on a negative-heavy workload (Sec. 3.3). *)
  let fi = Containment.Filter_index.build inv in
  let negatives =
    List.init 50 (fun i ->
        Nested.Value.set
          [
            Textformats.Xml_nested.element "author"
              [ Nested.Value.atom (Printf.sprintf "Nobody_%d" i) ];
          ])
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let plain = time (fun () -> E.run_workload inv negatives) in
  let filtered =
    time (fun () ->
        E.run_workload ~config:{ E.default with E.filter_index = Some fi } inv negatives)
  in
  Format.printf
    "@.50 negative author queries: %.2f ms plain, %.2f ms with Bloom prefilter (%d KiB of filters)@."
    (1000. *. plain) (1000. *. filtered)
    (Containment.Filter_index.memory_bytes fi / 1024);

  (* 7. Equality join: exact-duplicate detection for one record. *)
  let some_record = Invfile.Inverted_file.record_value inv 123 in
  let dups =
    E.query ~config:{ E.default with E.join = S.Equality; E.verify = true } inv
      some_record
  in
  Format.printf "@.Records exactly equal to record 123: %d@."
    (List.length dups.E.records)
