(* Quickstart: the paper's running example, end to end.

   Builds the two-record collection of Table 1 (Sue and Tim), runs the
   Section 1 query with every algorithm, and shows the other join types.

     dune exec examples/quickstart.exe *)

module E = Containment.Engine
module S = Containment.Semantics

let show_result inv (r : E.result) =
  match r.E.records with
  | [] -> print_endline "    (no results)"
  | records ->
    List.iter
      (fun id ->
        Format.printf "    record %d = %a@." id Nested.Value.pp
          (Invfile.Inverted_file.record_value inv id))
      records

let () =
  (* 1. Build an in-memory indexed collection from literal syntax. *)
  let inv = Containment.Collection.paper_example () in
  Format.printf "Collection: %d records, %d atoms, %d internal nodes@.@."
    (Invfile.Inverted_file.record_count inv)
    (Invfile.Inverted_file.atom_count inv)
    (Invfile.Inverted_file.node_count inv);

  (* 2. The Section 1 query: people living in the USA with a class-A
        motorbike licence valid in the UK. *)
  let q = Containment.Collection.paper_example_query in
  Format.printf "Query q = %a@." Nested.Value.pp q;

  (* 3. Run it with each algorithm — all agree (record 1 is Tim). *)
  List.iter
    (fun (name, algorithm) ->
      Format.printf "  %-22s:@." name;
      show_result inv (E.query ~config:{ E.default with E.algorithm } inv q))
    [
      ("bottom-up (Alg. 3+4)", E.Bottom_up);
      ("top-down (Alg. 1+2)", E.Top_down);
      ("top-down, as published", E.Top_down_paper);
      ("naive full scan", E.Naive_scan);
    ];

  (* 4. Other join types (Sec. 4.1). *)
  let uk_a_motorbike = Nested.Syntax.of_string "{{UK, {A, motorbike}}}" in
  Format.printf "@.Containment %a — who has a UK class-A motorbike licence?@."
    Nested.Value.pp uk_a_motorbike;
  show_result inv (E.query inv uk_a_motorbike);

  let sue = Invfile.Inverted_file.record_value inv 0 in
  Format.printf "@.Equality join with Sue's record:@.";
  show_result inv
    (E.query ~config:{ E.default with E.join = S.Equality; E.verify = true } inv sue);

  Format.printf "@.Superset join: which stored records are sub-records of Sue's?@.";
  show_result inv (E.query ~config:{ E.default with E.join = S.Superset } inv sue);

  Format.printf "@.2-overlap join with {Boston, USA, Austin}:@.";
  show_result inv
    (E.query
       ~config:{ E.default with E.join = S.Overlap 2 }
       inv
       (Nested.Syntax.of_string "{Boston, USA, Austin}"));

  (* 5. Alternate embedding semantics (Sec. 4.2). *)
  let deep_c = Nested.Syntax.of_string "{{C}}" in
  Format.printf "@.%a under homomorphic semantics (exact levels):@." Nested.Value.pp deep_c;
  show_result inv (E.query inv deep_c);
  Format.printf "under homeomorphic semantics (C may sit deeper):@.";
  show_result inv (E.query ~config:{ E.default with E.embedding = S.Homeo } inv deep_c)
