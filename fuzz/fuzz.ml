(* Differential fuzzer.

   Long-running randomized cross-checking of the whole stack, beyond what
   the qcheck properties cover per-module: each scenario builds a random
   collection on a random backend, interleaves incremental updates, and
   compares every algorithm/join/semantics combination against the
   value-level oracle and a model of the live records.

     dune exec fuzz/fuzz.exe                  -- 200 scenarios
     dune exec fuzz/fuzz.exe -- 10000         -- more
     dune exec fuzz/fuzz.exe -- 500 99        -- scenarios, seed
     dune exec fuzz/fuzz.exe -- crash 500 99  -- crash-recovery mode
     dune exec fuzz/fuzz.exe -- codec 500 99  -- payload-codec mode
     dune exec fuzz/fuzz.exe -- join 500 99   -- containment-join mode

   Crash mode is the long-running companion to test/test_faults.ml: each
   scenario runs a random update workload behind Storage.Fault with a
   random kill point (clean or torn), reopens, and checks that recovery
   leaves the store consistent, that queries agree with the value-level
   oracle, and that the surviving records are exactly a prefix of the
   updates (update atomicity).

   Codec mode is the companion to test/test_kernels.ml: random postings
   lists with lengths biased to the Plist_blocks block boundaries are
   round-tripped through every payload codec and driven through the
   streamed kernels against the Plist_ref oracle.

   Exits non-zero on the first divergence, printing a reproducer. *)

module E = Containment.Engine
module S = Containment.Semantics
module V = Nested.Value
module IF = Invfile.Inverted_file

let atoms = [| "a"; "b"; "c"; "d"; "e" |]

let rec random_set rng depth =
  let n_leaves = Random.State.int rng 4 in
  let leaves =
    List.init n_leaves (fun _ -> V.atom atoms.(Random.State.int rng (Array.length atoms)))
  in
  let n_children = if depth >= 3 then 0 else Random.State.int rng 3 in
  let children = List.init n_children (fun _ -> random_set rng (depth + 1)) in
  V.set (leaves @ children)

let joins rng =
  match Random.State.int rng 5 with
  | 0 -> S.Containment
  | 1 -> S.Equality
  | 2 -> S.Superset
  | 3 -> S.Overlap (1 + Random.State.int rng 3)
  | _ -> S.Similarity (0.25 +. Random.State.float rng 0.75)

let embeddings rng =
  match Random.State.int rng 4 with
  | 0 -> S.Hom
  | 1 -> S.Iso
  | 2 -> S.Homeo
  | _ -> S.Homeo_full

let algorithms = [ ("bu", E.Bottom_up); ("td", E.Top_down); ("naive", E.Naive_scan) ]

let scenario rng i =
  let backend, cleanup =
    match Random.State.int rng 3 with
    | 0 -> (Containment.Collection.Mem, fun () -> ())
    | 1 ->
      let path = Filename.temp_file "fuzz" ".tch" in
      (Containment.Collection.Hash path, fun () -> try Sys.remove path with _ -> ())
    | _ ->
      let path = Filename.temp_file "fuzz" ".log" in
      (Containment.Collection.Log path, fun () -> try Sys.remove path with _ -> ())
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let n0 = 3 + Random.State.int rng 8 in
  let initial = List.init n0 (fun _ -> random_set rng 0) in
  let inv = Containment.Collection.of_values ~backend initial in
  (* model: live record id -> value *)
  let model : (int, V.t) Hashtbl.t = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace model i v) initial;
  (* a few random updates *)
  for _ = 1 to Random.State.int rng 6 do
    if Random.State.bool rng then begin
      let v = random_set rng 0 in
      let id = Invfile.Updater.add_value inv v in
      Hashtbl.replace model id v
    end
    else begin
      let id = Random.State.int rng (IF.record_count inv) in
      if Invfile.Updater.delete_record inv id then Hashtbl.remove model id
    end
  done;
  (* random queries under random configurations *)
  for _ = 1 to 8 do
    let q = random_set rng 1 in
    let join = joins rng and embedding = embeddings rng in
    match S.mode_of join embedding with
    | exception S.Unsupported _ -> ()
    | exception Invalid_argument _ -> ()
    | _ ->
      let expected =
        Hashtbl.fold
          (fun id s acc ->
            if Containment.Embed.check join embedding ~q ~s then id :: acc else acc)
          model []
        |> List.sort Int.compare
      in
      List.iter
        (fun (name, algorithm) ->
          (* the naive scan handles every combination the oracle does *)
          let config = { E.default with E.algorithm; E.join; E.embedding } in
          let got = (E.query ~config inv q).E.records in
          if got <> expected then begin
            Printf.printf "\nDIVERGENCE in scenario %d (%s, %s):\n" i name
              (Format.asprintf "%a × %a" S.pp_join join S.pp_embedding embedding);
            Printf.printf "  query: %s\n" (V.to_string q);
            Hashtbl.iter
              (fun id s -> Printf.printf "  record %d: %s\n" id (V.to_string s))
              model;
            Printf.printf "  got      [%s]\n"
              (String.concat ";" (List.map string_of_int got));
            Printf.printf "  expected [%s]\n"
              (String.concat ";" (List.map string_of_int expected));
            exit 1
          end)
        algorithms
  done;
  (* the collection must remain internally consistent after the updates *)
  (match Invfile.Integrity.check inv with
  | [] -> ()
  | problems ->
    Printf.printf "\nINTEGRITY FAILURE in scenario %d:\n" i;
    List.iter
      (fun p -> Format.printf "  %a@." Invfile.Integrity.pp_problem p)
      problems;
    Hashtbl.iter
      (fun id s -> Printf.printf "  record %d: %s\n" id (V.to_string s))
      model;
    exit 1);
  IF.close inv

(* --- join mode ---

   The prefix-tree join engine against the naive per-query loop: random
   inner collections (random backend), random outer collections mixing
   subqueries of records (dense positives) with fresh sets, under random
   LIMIT+ cut thresholds — every cut point must stay exact. *)

let join_scenario rng i =
  let backend, cleanup =
    match Random.State.int rng 2 with
    | 0 -> (Containment.Collection.Mem, fun () -> ())
    | _ ->
      let path = Filename.temp_file "fuzz" ".tch" in
      (Containment.Collection.Hash path, fun () -> try Sys.remove path with _ -> ())
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let n0 = Random.State.int rng 12 in
  let inner = List.init n0 (fun _ -> random_set rng 0) in
  let inv = Containment.Collection.of_values ~backend inner in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  let inner_arr = Array.of_list inner in
  let rec subquery v =
    if V.is_atom v then v
    else
      V.set
        (List.filter_map
           (fun e ->
             if Random.State.bool rng then None
             else Some (if V.is_set e then subquery e else e))
           (V.elements v))
  in
  let outer =
    List.init
      (Random.State.int rng 8)
      (fun _ ->
        if n0 > 0 && Random.State.bool rng then
          subquery inner_arr.(Random.State.int rng n0)
        else random_set rng 1)
    |> List.filter V.is_set
  in
  let config =
    {
      Join.Engine.default with
      Join.Engine.max_depth = Random.State.int rng 4;
      cut_candidates = Random.State.int rng 4;
      cut_fanout = 1 + Random.State.int rng 3;
    }
  in
  let got = (Join.Engine.join ~config inv outer).Join.Engine.pairs in
  let expected = Join.Engine.naive inv outer in
  if got <> expected then begin
    Printf.printf "\nJOIN DIVERGENCE in scenario %d:\n" i;
    Printf.printf "  config: max_depth=%d cut_candidates=%d cut_fanout=%d\n"
      config.Join.Engine.max_depth config.Join.Engine.cut_candidates
      config.Join.Engine.cut_fanout;
    List.iteri
      (fun id s -> Printf.printf "  record %d: %s\n" id (V.to_string s))
      inner;
    List.iteri
      (fun qi q -> Printf.printf "  outer %d: %s\n" qi (V.to_string q))
      outer;
    let show ps =
      String.concat ";"
        (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ps)
    in
    Printf.printf "  got      [%s]\n" (show got);
    Printf.printf "  expected [%s]\n" (show expected);
    exit 1
  end

(* --- crash-recovery mode --- *)

module F = Storage.Fault

let sorted_bindings tbl =
  Hashtbl.fold (fun id v acc -> (id, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let crash_scenario rng i =
  let path = Filename.temp_file "fuzz_crash" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
  @@ fun () ->
  let n0 = 3 + Random.State.int rng 6 in
  let initial = List.init n0 (fun _ -> random_set rng 0) in
  IF.close
    (Containment.Collection.of_values
       ~backend:(Containment.Collection.Log path) initial);
  (* script the updates up front so every intermediate model state is
     known: after an atomic crash, the store must equal one of them *)
  let n_updates = 2 + Random.State.int rng 8 in
  let slots = ref n0 in
  let updates =
    List.init n_updates (fun _ ->
        if Random.State.int rng 3 > 0 then begin
          incr slots;
          `Add (random_set rng 0)
        end
        else `Delete (Random.State.int rng !slots))
  in
  let states =
    (* model after 0, 1, ..., n updates *)
    let model = Hashtbl.create 16 in
    List.iteri (fun id v -> Hashtbl.replace model id v) initial;
    let next = ref n0 in
    (* bind the initial snapshot before List.map mutates the model —
       [::] gives no evaluation-order guarantee *)
    let s0 = sorted_bindings model in
    s0
    :: List.map
         (fun u ->
           (match u with
           | `Add v ->
             Hashtbl.replace model !next v;
             incr next
           | `Delete id -> Hashtbl.remove model id);
           sorted_bindings model)
         updates
  in
  let config =
    {
      F.default with
      F.seed = i;
      crash_after = Some (1 + Random.State.int rng 80);
      crash_mode = (if Random.State.bool rng then F.Clean else F.Torn);
    }
  in
  let wrapper = F.wrap ~config (Storage.Log_store.open_existing path) in
  (try
     let inv = IF.open_store (F.kv wrapper) in
     List.iter
       (function
         | `Add v -> ignore (Invfile.Updater.add_value inv v)
         | `Delete id -> ignore (Invfile.Updater.delete_record inv id))
       updates
   with F.Crashed _ -> ());
  (F.kv wrapper).Storage.Kv.close ();
  (* reopen: recovery runs in open_store *)
  let inv = IF.open_store (Storage.Log_store.open_existing path) in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  (match Invfile.Integrity.check inv with
  | [] -> ()
  | problems ->
    Printf.printf "\nCRASH-RECOVERY INTEGRITY FAILURE in scenario %d:\n" i;
    List.iter (fun p -> Format.printf "  %a@." Invfile.Integrity.pp_problem p) problems;
    exit 1);
  let live =
    List.filter_map
      (fun id -> Option.map (fun v -> (id, v)) (IF.record_value_opt inv id))
      (List.init (IF.record_count inv) Fun.id)
  in
  let state_equal a b =
    List.length a = List.length b
    && List.for_all2 (fun (i1, v1) (i2, v2) -> i1 = i2 && V.equal v1 v2) a b
  in
  if not (List.exists (fun st -> state_equal st live) states) then begin
    Printf.printf "\nATOMICITY FAILURE in scenario %d: recovered state is not a\n" i;
    Printf.printf "prefix of the scripted updates.\n";
    List.iter (fun (id, v) -> Printf.printf "  live %d: %s\n" id (V.to_string v)) live;
    List.iteri
      (fun k st ->
        Printf.printf "  state %d: {%s}\n" k
          (String.concat "," (List.map (fun (id, _) -> string_of_int id) st)))
      states;
    List.iteri
      (fun k st ->
        if List.map fst st = List.map fst live then
          List.iter2
            (fun (id, mv) (_, lv) ->
              if not (V.equal mv lv) then
                Printf.printf "  state %d id %d differs:\n    model %s\n    live  %s\n"
                  k id (V.to_string mv) (V.to_string lv))
            st live)
      states;
    exit 1
  end;
  for _ = 1 to 4 do
    let q = random_set rng 1 in
    let expected =
      List.filter_map
        (fun (id, s) ->
          if Containment.Embed.check S.Containment S.Hom ~q ~s then Some id
          else None)
        live
    in
    let got = (E.query inv q).E.records in
    if got <> expected then begin
      Printf.printf "\nCRASH-RECOVERY DIVERGENCE in scenario %d:\n" i;
      Printf.printf "  query: %s\n" (V.to_string q);
      List.iter (fun (id, v) -> Printf.printf "  live %d: %s\n" id (V.to_string v)) live;
      Printf.printf "  got      [%s]\n" (String.concat ";" (List.map string_of_int got));
      Printf.printf "  expected [%s]\n"
        (String.concat ";" (List.map string_of_int expected));
      exit 1
    end
  done

(* --- live mode ---

   The LSM-style live store against a model of the acknowledged records:
   random insert/delete/flush/compact/reopen interleavings under a random
   flush threshold, then random queries under random join × embedding
   configurations checked against the value-level oracle — the
   long-running companion to test/test_live.ml's qcheck differential. *)

module LS = Live.Live_store

let live_scenario rng i =
  let dir = Filename.temp_file "fuzz_live" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
  @@ fun () ->
  let config =
    { LS.default with
      LS.flush_records = Random.State.int rng 6;
      max_segments = 0;
      auto_compact = false }
  in
  let store = ref (LS.create ~config dir) in
  let model : (int, V.t) Hashtbl.t = Hashtbl.create 16 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.printf "\nLIVE DIVERGENCE in scenario %d: %s\n" i msg;
        Hashtbl.iter
          (fun id s -> Printf.printf "  record %d: %s\n" id (V.to_string s))
          model;
        exit 1)
      fmt
  in
  let ops = 5 + Random.State.int rng 30 in
  for _ = 1 to ops do
    match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
      let v = random_set rng 0 in
      let id = LS.insert !store v in
      if Hashtbl.mem model id then fail "id %d reused" id;
      Hashtbl.replace model id v
    | 5 | 6 ->
      (* a random id: sometimes live, sometimes already gone or bogus *)
      let id = Random.State.int rng (LS.next_id !store + 1) in
      let deleted = LS.delete !store id in
      if deleted <> Hashtbl.mem model id then
        fail "delete %d answered %b against the model" id deleted;
      Hashtbl.remove model id
    | 7 -> ignore (LS.flush !store)
    | 8 -> ignore (LS.compact ~all:(Random.State.bool rng) !store)
    | _ ->
      LS.close !store;
      store := LS.open_store ~config dir
  done;
  Fun.protect ~finally:(fun () -> LS.close !store) @@ fun () ->
  (* the live records are exactly the model *)
  let live =
    List.rev
      (LS.fold_live !store ~init:[] ~f:(fun acc id v -> (id, v) :: acc))
  in
  let wanted =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (Hashtbl.fold (fun id v acc -> (id, v) :: acc) model [])
  in
  if live <> wanted then fail "live records differ from the model";
  (* random queries under random configurations *)
  for _ = 1 to 8 do
    let q = random_set rng 1 in
    let join = joins rng and embedding = embeddings rng in
    match S.mode_of join embedding with
    | exception S.Unsupported _ -> ()
    | exception Invalid_argument _ -> ()
    | _ ->
      let expected =
        Hashtbl.fold
          (fun id s acc ->
            if Containment.Embed.check join embedding ~q ~s then id :: acc
            else acc)
          model []
        |> List.sort Int.compare
      in
      let config = { E.default with E.join; E.embedding } in
      let got = LS.query ~config !store q in
      if got <> expected then
        fail "query %s under %s: got [%s], expected [%s]" (V.to_string q)
          (Format.asprintf "%a × %a" S.pp_join join S.pp_embedding embedding)
          (String.concat ";" (List.map string_of_int got))
          (String.concat ";" (List.map string_of_int expected))
  done;
  (* and the store must still pass its own fsck *)
  match LS.verify !store with
  | [] -> ()
  | problems ->
    fail "verify: %s"
      (String.concat "; "
         (List.map (fun (what, detail) -> what ^ ": " ^ detail) problems))

(* --- payload-codec mode --- *)

module L = Invfile.Plist
module R = Invfile.Plist_ref
module St = Invfile.Plist_stream
module P = Invfile.Posting

(* Deterministic posting per node id — equal ids carry identical payloads
   across lists, the invariant the intersection kernels assume. *)
let posting_of_id node =
  let h = (node * 2654435761) land 0x3FFFFFFF in
  let n_children = h land 3 in
  let step = 1 + ((h lsr 2) land 7) in
  let children = Array.init n_children (fun k -> node + 1 + ((k + 1) * step)) in
  let parent = if node = 0 || h land 16 = 0 then -1 else (h lsr 5) mod node in
  {
    P.node;
    children;
    leaf_count = (h lsr 8) land 15;
    post = node + ((h lsr 12) land 255);
    parent;
  }

(* Lengths straddling the 128-posting block boundary, half the time. *)
let boundary_lengths = [| 0; 1; 2; 127; 128; 129; 255; 256; 257; 383; 384; 385 |]

let random_plist rng =
  let n =
    if Random.State.bool rng then
      boundary_lengths.(Random.State.int rng (Array.length boundary_lengths))
    else Random.State.int rng 600
  in
  let id = ref (Random.State.int rng 1000) in
  let out = ref [] in
  for _ = 1 to n do
    out := posting_of_id !id :: !out;
    (* per-posting stride: runs of 1 produce bitmap blocks, large jumps
       varint blocks — most lists end up mixing both representations *)
    let stride =
      match Random.State.int rng 3 with
      | 0 -> 1
      | 1 -> 1 + Random.State.int rng 8
      | _ -> 1 + Random.State.int rng 5000
    in
    id := !id + stride
  done;
  Array.of_list (List.rev !out)

let codec_scenario rng i =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "\nCODEC FAILURE in scenario %d: %s\n" i m;
        exit 1)
      fmt
  in
  let lists = List.init (1 + Random.State.int rng 4) (fun _ -> random_plist rng) in
  List.iter
    (fun l ->
      List.iter
        (fun codec ->
          let payload = L.to_bytes ~codec l in
          (match L.of_bytes payload with
          | back ->
            if back <> l then fail "round trip diverged (%d postings)" (Array.length l);
            (* canonical: decode-then-encode reproduces the payload *)
            if not (String.equal (L.to_bytes ~codec back) payload) then
              fail "payload not canonical (%d postings)" (Array.length l)
          | exception e -> fail "decode raised %s" (Printexc.to_string e)))
        [ L.Varint; L.Bitpacked; L.Blocked ])
    lists;
  (* streamed kernels over mixed 'C'/'V' payloads vs the oracle *)
  let payloads =
    List.mapi
      (fun k l -> L.to_bytes ~codec:(if k land 1 = 0 then L.Blocked else L.Varint) l)
      lists
  in
  if St.inter_many payloads <> R.inter_many lists then fail "inter_many diverged";
  if St.union_with_counts payloads <> R.union_with_counts lists then
    fail "union_with_counts diverged";
  (match lists with
  | a :: b :: _ ->
    if L.inter a b <> R.inter a b then fail "inter diverged";
    if L.union a b <> R.union a b then fail "union diverged"
  | _ -> ());
  (* ascending skip_to probes on a blocked cursor vs the oracle's lower_bound *)
  let l = List.hd lists in
  let c = St.cursor_of_bytes (L.to_bytes ~codec:L.Blocked l) in
  let probe = ref 0 in
  for _ = 1 to 16 do
    probe := !probe + Random.State.int rng 100_000;
    let lb = R.lower_bound l !probe in
    (match St.skip_to c !probe with
    | Some p when lb < Array.length l && p = l.(lb) -> ()
    | None when lb = Array.length l -> ()
    | _ -> fail "skip_to %d diverged" !probe);
    if St.remaining c <> Array.length l - lb then fail "remaining after skip_to %d" !probe
  done

let run ~label ~scenarios ~seed one =
  let rng = Random.State.make [| seed; 0xf022 |] in
  let t0 = Unix.gettimeofday () in
  for i = 1 to scenarios do
    one rng i;
    if i mod 50 = 0 then begin
      Printf.printf "%d %s scenarios ok (%.1fs)\n" i label
        (Unix.gettimeofday () -. t0);
      flush stdout
    end
  done;
  Printf.printf "all %d %s scenarios passed (%.1fs)\n" scenarios label
    (Unix.gettimeofday () -. t0)

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "crash" :: rest ->
    let scenarios, seed =
      match rest with
      | [] -> (100, 1)
      | [ n ] -> (int_of_string n, 1)
      | n :: s :: _ -> (int_of_string n, int_of_string s)
    in
    run ~label:"crash" ~scenarios ~seed crash_scenario
  | _ :: "join" :: rest ->
    let scenarios, seed =
      match rest with
      | [] -> (200, 1)
      | [ n ] -> (int_of_string n, 1)
      | n :: s :: _ -> (int_of_string n, int_of_string s)
    in
    run ~label:"join" ~scenarios ~seed join_scenario
  | _ :: "live" :: rest ->
    let scenarios, seed =
      match rest with
      | [] -> (200, 1)
      | [ n ] -> (int_of_string n, 1)
      | n :: s :: _ -> (int_of_string n, int_of_string s)
    in
    run ~label:"live" ~scenarios ~seed live_scenario
  | _ :: "codec" :: rest ->
    let scenarios, seed =
      match rest with
      | [] -> (200, 1)
      | [ n ] -> (int_of_string n, 1)
      | n :: s :: _ -> (int_of_string n, int_of_string s)
    in
    run ~label:"codec" ~scenarios ~seed codec_scenario
  | _ ->
    let scenarios =
      if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
    in
    let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
    run ~label:"differential" ~scenarios ~seed scenario
